(* Static kernel verifier tests: one positive (diagnostic fired, right
   code and location) and one negative case per pass, a seeded corpus
   of known-racy/divergent kernels checked against both the expected
   diagnostic code and the dynamic monitor, and the fuzz-backed
   soundness-parity property (static-clean => dynamic-monitor-silent)
   over generated kernels. *)

open Gpr_isa
open Gpr_isa.Types
module L = Gpr_lint.Lint
module D = Gpr_lint.Diag
module U = Gpr_lint.Uniformity
module E = Gpr_exec.Exec
module I = Gpr_util.Interval

let codes ds = List.map (fun d -> d.D.d_code) ds
let has_code c ds = List.mem c (codes ds)

let errors ds = List.filter (fun d -> d.D.d_severity = D.Error) ds

let check_has kernel c ds =
  Alcotest.(check bool)
    (Printf.sprintf "%s reports %s (got: %s)" kernel.k_name c
       (String.concat " " (codes ds)))
    true (has_code c ds)

let check_lacks kernel c ds =
  Alcotest.(check bool)
    (Printf.sprintf "%s must not report %s" kernel.k_name c)
    false (has_code c ds)

(* Run the executor with the dynamic barrier/race monitor armed and
   collect its events.  Buffers default to zero-filled arrays. *)
let monitor_events ?(shared = []) kernel ~launch =
  let data =
    Array.to_list kernel.k_buffers
    |> List.filter_map (fun (b : buffer) ->
           if b.buf_space = Shared then None
           else
             Some
               ( b.buf_name,
                 match b.buf_elem with
                 | F32 -> E.F_data (Array.make 1024 0.0)
                 | _ -> E.I_data (Array.make 1024 0) ))
  in
  let bindings = E.bindings_for kernel ~data ~shared () in
  let events = ref [] in
  ignore
    (E.run ~check:true kernel ~launch ~params:[||] ~bindings
       {
         E.default_config with
         max_steps = Some 1_000_000;
         on_monitor = Some (fun ev -> events := ev :: !events);
       });
  List.rev !events

(* ------------------------------------------------------------------ *)
(* Pass 1: divergence *)

let test_divergence_positive () =
  let b = Builder.create ~name:"div_pos" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  if_then b (ilt b ~$tid (ci 7)) (fun () -> st b out ~$tid (ci 1));
  let k = finish b in
  let launch = launch_1d ~block:32 ~grid:1 in
  let ds = L.lint k ~launch in
  check_has k "GL100" ds;
  (* the abstract values behind it: tid is stride-1 affine *)
  let ctx = L.make_ctx k ~launch in
  let uni = L.uniformity ctx in
  let tid_id =
    match List.find_opt (fun (_, s) -> s = Tid_x) k.k_specials with
    | Some (id, _) -> id
    | None -> Alcotest.fail "no tid.x special"
  in
  (match U.value uni tid_id with
  | U.Affine (1, base) ->
    Alcotest.(check bool) "tid base {0}" true (I.equal base (I.of_const 0))
  | v -> Alcotest.fail ("tid classified " ^ U.av_to_string v))

let test_divergence_negative () =
  let b = Builder.create ~name:"div_neg" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let n = param_i32 b ~range:(0, 16) "n" in
  let tid = tid_x b in
  (* branch on a uniform (parameter) predicate: no divergence *)
  if_then b (ilt b ~$n (ci 7)) (fun () -> st b out ~$tid (ci 1));
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  check_lacks k "GL100" ds;
  Alcotest.(check int) "no errors" 0 (List.length (errors ds))

(* ------------------------------------------------------------------ *)
(* Pass 2: barrier *)

let divergent_barrier_kernel () =
  let b = Builder.create ~name:"bar_div" in
  let open Builder in
  let sh = shared_buffer b S32 "sh" in
  let tid = tid_x b in
  if_then b (ilt b ~$tid (ci 16)) (fun () ->
      st b sh ~$tid ~$tid;
      bar b);
  finish b

let test_barrier_positive () =
  let k = divergent_barrier_kernel () in
  let ds = L.lint k ~launch:(launch_1d ~block:64 ~grid:1) in
  check_has k "GL101" ds;
  let d = List.find (fun d -> d.D.d_code = "GL101") ds in
  Alcotest.(check bool) "GL101 is an error" true (d.D.d_severity = D.Error);
  (* location points at an actual bar.sync *)
  (match D.quote k d.D.d_loc with
  | Some q ->
    Alcotest.(check bool) ("location quotes a bar: " ^ q) true
      (String.length q >= 3 && String.sub q 0 3 = "bar")
  | None -> Alcotest.fail "GL101 lost its location")

let test_barrier_divergent_exit () =
  let b = Builder.create ~name:"bar_exit" in
  let open Builder in
  let sh = shared_buffer b S32 "sh" in
  let tid = tid_x b in
  if_then b (ilt b ~$tid (ci 4)) (fun () -> ret b);
  st b sh ~$tid ~$tid;
  bar b;
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:64 ~grid:1) in
  check_has k "GL102" ds;
  check_has k "GL101" ds

let test_barrier_negative () =
  let b = Builder.create ~name:"bar_ok" in
  let open Builder in
  let sh = shared_buffer b S32 "sh" in
  let n = param_i32 b ~range:(0, 16) "n" in
  let tid = tid_x b in
  (* uniform branch around work, barrier at top level: fine *)
  if_then b (ilt b ~$n (ci 9)) (fun () -> st b sh ~$tid ~$tid);
  bar b;
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:64 ~grid:1) in
  check_lacks k "GL101" ds;
  check_lacks k "GL102" ds

(* ------------------------------------------------------------------ *)
(* Pass 3: shared races *)

let ww_race_kernel () =
  let b = Builder.create ~name:"race_ww" in
  let open Builder in
  let sh = shared_buffer b S32 "sh" in
  let tid = tid_x b in
  st b sh (ci 0) ~$tid;
  finish b

let rw_race_kernel () =
  let b = Builder.create ~name:"race_rw" in
  let open Builder in
  let sh = shared_buffer b S32 "sh" in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  st b sh ~$tid ~$tid;
  (* same barrier interval: thread t reads the element thread t+1 wrote *)
  let v = ld b sh ~$(iadd b ~$tid (ci 1)) in
  st b out ~$tid ~$v;
  finish b

let test_race_ww () =
  let k = ww_race_kernel () in
  let ds = L.lint k ~launch:(launch_1d ~block:64 ~grid:1) in
  check_has k "GL201" ds;
  let d = List.find (fun d -> d.D.d_code = "GL201") ds in
  Alcotest.(check bool) "error severity" true (d.D.d_severity = D.Error)

let test_race_rw () =
  let k = rw_race_kernel () in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  check_has k "GL202" ds

let test_race_possible () =
  let b = Builder.create ~name:"race_maybe" in
  let open Builder in
  let sh = shared_buffer b S32 "sh" in
  let tid = tid_x b in
  (* divergent (non-affine) index: the analysis cannot prove anything *)
  st b sh ~$(irem b ~$tid (ci 7)) ~$tid;
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  check_has k "GL203" ds;
  check_lacks k "GL201" ds

let test_race_benign_broadcast () =
  let b = Builder.create ~name:"race_bcast" in
  let open Builder in
  let sh = shared_buffer b S32 "sh" in
  st b sh (ci 0) (ci 42);
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:64 ~grid:1) in
  check_has k "GL204" ds;
  check_lacks k "GL201" ds

let test_race_negative () =
  let b = Builder.create ~name:"race_ok" in
  let open Builder in
  let sh = shared_buffer b S32 "sh" in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  (* the canonical exchange: tid-indexed store, barrier, shifted load *)
  st b sh ~$tid ~$tid;
  bar b;
  let v = ld b sh ~$(iadd b ~$tid (ci 1)) in
  st b out ~$tid ~$v;
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  List.iter (fun c -> check_lacks k c ds) [ "GL201"; "GL202"; "GL203"; "GL204" ]

(* ------------------------------------------------------------------ *)
(* Pass 4: compression soundness *)

let param_kernel () =
  let b = Builder.create ~name:"narrow" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let n = param_i32 b ~range:(0, 1000) "n" in
  let tid = tid_x b in
  st b out ~$tid ~$(iadd b ~$n (ci 1));
  finish b

let test_compression_positive () =
  let k = param_kernel () in
  let launch = launch_1d ~block:32 ~grid:1 in
  (* Force every integer into 4 bits: ranges like [0,1000] need more, so
     the audit must flag the allocation as unsound. *)
  let width_of (r : vreg) = match r.ty with S32 | U32 -> 4 | _ -> 32 in
  let ctx = L.make_ctx ~width_of k ~launch in
  let ds = L.run ctx in
  check_has k "GL301" ds

let test_compression_structural () =
  let b = Builder.create ~name:"malformed" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  let v = iadd b ~$tid (ci 1) in
  st b out ~$tid ~$v;
  let k = finish b in
  let launch = launch_1d ~block:32 ~grid:1 in
  let alloc = Gpr_alloc.Alloc.baseline k in
  (* corrupt v's slice count: structurally malformed placement *)
  (match Gpr_alloc.Alloc.lookup alloc v.id with
  | Some p ->
    Hashtbl.replace alloc.placements v.id
      { p with Gpr_alloc.Alloc.slices = p.Gpr_alloc.Alloc.slices + 1 }
  | None -> Alcotest.fail "v not placed");
  let ds = L.run (L.make_ctx ~alloc k ~launch) in
  check_has k "GL302" ds

let test_compression_overlap () =
  let b = Builder.create ~name:"overlap" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  (* x and y are simultaneously live (both feed the final store) *)
  let x = iadd b ~$tid (ci 1) in
  let y = iadd b ~$tid (ci 2) in
  st b out ~$tid ~$(iadd b ~$x ~$y);
  let k = finish b in
  let launch = launch_1d ~block:32 ~grid:1 in
  let alloc = Gpr_alloc.Alloc.baseline k in
  (* force y onto x's physical register and slices *)
  (match Gpr_alloc.Alloc.lookup alloc x.id with
  | Some px -> Hashtbl.replace alloc.placements y.id px
  | None -> Alcotest.fail "x not placed");
  let ds = L.run (L.make_ctx ~alloc k ~launch) in
  check_has k "GL303" ds

let test_compression_negative () =
  let k = param_kernel () in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  List.iter (fun c -> check_lacks k c ds) [ "GL301"; "GL302"; "GL303" ]

(* ------------------------------------------------------------------ *)
(* Pass 5: bounds *)

let test_bounds_definite () =
  let b = Builder.create ~name:"oob_def" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  st b out (ci (-1)) (ci 0);
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  check_has k "GL401" ds

let test_bounds_possible () =
  let b = Builder.create ~name:"oob_maybe" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  st b out ~$tid (ci 0);
  let k = finish b in
  let buffer_len = function "out" -> Some 16 | _ -> None in
  let ds = L.lint ~buffer_len k ~launch:(launch_1d ~block:32 ~grid:1) in
  check_has k "GL402" ds;
  check_lacks k "GL401" ds

let test_bounds_negative () =
  let b = Builder.create ~name:"oob_none" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  st b out ~$tid (ci 0);
  let k = finish b in
  let buffer_len = function "out" -> Some 32 | _ -> None in
  let ds = L.lint ~buffer_len k ~launch:(launch_1d ~block:32 ~grid:1) in
  check_lacks k "GL401" ds;
  check_lacks k "GL402" ds

(* ------------------------------------------------------------------ *)
(* Pass 6: definite assignment / dead stores *)

let test_defs_use_before_assign () =
  let b = Builder.create ~name:"maybe_uninit" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let n = param_i32 b ~range:(0, 16) "n" in
  let tid = tid_x b in
  let x = var b S32 "x" in
  if_then b (ilt b ~$n (ci 8)) (fun () -> assign b x (ci 5));
  (* on the else path x was never assigned *)
  st b out ~$tid ~$x;
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  check_has k "GL501" ds

let test_defs_dead_store () =
  let b = Builder.create ~name:"dead" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  let (_ : vreg) = iadd b ~$tid (ci 99) in
  st b out ~$tid ~$tid;
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  check_has k "GL502" ds

let test_defs_negative () =
  let b = Builder.create ~name:"defs_ok" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  let x = var b S32 "x" in
  assign b x (ci 1);
  st b out ~$tid ~$(iadd b ~$x ~$tid);
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  check_lacks k "GL501" ds;
  check_lacks k "GL502" ds

(* ------------------------------------------------------------------ *)
(* Pass 7: bitwidth advisories *)

let test_bitwidth_redundant_mask () =
  let b = Builder.create ~name:"remask" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  let x = iand b ~$tid (ci 0xff) in
  (* known bits prove x fits in 8 bits, so this second mask is a no-op *)
  let y = iand b ~$x (ci 0xffff) in
  st b out ~$tid ~$y;
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  check_has k "GL601" ds

let test_bitwidth_dead_high_bits () =
  let b = Builder.create ~name:"deadhigh" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  (* v carries ~10 significant bits but only the low 3 are ever read *)
  let v = imul b ~$tid ~$tid in
  st b out ~$tid ~$(iand b ~$v (ci 7));
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  check_has k "GL602" ds

let test_bitwidth_shift_oob () =
  let b = Builder.create ~name:"bigshift" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  st b out ~$tid ~$(ishl b ~$tid (ci 33));
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  check_has k "GL603" ds;
  let d = List.find (fun d -> d.D.d_code = "GL603") ds in
  Alcotest.(check bool) "GL603 is a warning" true (d.D.d_severity = D.Warning)

let test_bitwidth_negative () =
  let b = Builder.create ~name:"bits_ok" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  st b out ~$tid ~$(iadd b ~$tid (ci 1));
  let k = finish b in
  let ds = L.lint k ~launch:(launch_1d ~block:32 ~grid:1) in
  List.iter (fun c -> check_lacks k c ds) [ "GL601"; "GL602"; "GL603" ]

(* ------------------------------------------------------------------ *)
(* Seeded hazard corpus: each kernel must produce its expected static
   code, and where the hazard is dynamically observable the monitor
   must fire too (static and dynamic verdicts agree). *)

let test_hazard_corpus () =
  let block = 64 in
  let launch = launch_1d ~block ~grid:1 in
  let corpus =
    [
      (divergent_barrier_kernel (), "GL101", true, [ ("sh", block) ]);
      (ww_race_kernel (), "GL201", true, [ ("sh", block) ]);
      (rw_race_kernel (), "GL202", true, [ ("sh", block + 1) ]);
    ]
  in
  List.iter
    (fun (k, code, expect_dynamic, shared) ->
      let ds = L.lint k ~launch in
      check_has k code ds;
      Alcotest.(check bool)
        (k.k_name ^ " not monitor-clean")
        false (L.monitor_clean ds);
      if expect_dynamic then
        let events = monitor_events ~shared k ~launch in
        Alcotest.(check bool)
          (k.k_name ^ " dynamic monitor fires")
          true
          (List.length events > 0))
    corpus

(* A clean kernel: no diagnostics at all, and a silent monitor. *)
let test_clean_kernel () =
  let b = Builder.create ~name:"clean" in
  let open Builder in
  let sh = shared_buffer b S32 "sh" in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  st b sh ~$tid ~$tid;
  bar b;
  let v = ld b sh ~$(iadd b ~$tid (ci 1)) in
  st b out ~$tid ~$v;
  let k = finish b in
  let launch = launch_1d ~block:32 ~grid:1 in
  let ds = L.lint k ~launch in
  Alcotest.(check bool)
    ("clean kernel: " ^ String.concat " " (codes ds))
    true (L.monitor_clean ds);
  Alcotest.(check int) "monitor silent" 0
    (List.length (monitor_events ~shared:[ ("sh", 33) ] k ~launch))

(* ------------------------------------------------------------------ *)
(* Registry gate: zero error-severity diagnostics on every workload. *)

let workload_buffer_len (w : Gpr_workloads.Workload.t) =
  let data = w.data () in
  fun name ->
    match List.assoc_opt name w.shared with
    | Some n -> Some n
    | None -> (
      match List.assoc_opt name data with
      | Some (E.I_data a) -> Some (Array.length a)
      | Some (E.F_data a) -> Some (Array.length a)
      | None -> None)

let test_registry_no_errors () =
  List.iter
    (fun (w : Gpr_workloads.Workload.t) ->
      let ds =
        L.lint ~buffer_len:(workload_buffer_len w) w.kernel ~launch:w.launch
      in
      let errs = errors ds in
      Alcotest.(check int)
        (Printf.sprintf "%s error diagnostics (%s)" w.name
           (String.concat " " (codes errs)))
        0 (List.length errs))
    Gpr_workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* Soundness parity over generated kernels: Diff.check_lint raises
   Lint_unsound iff the dynamic monitor fires on a statically-clean
   kernel. *)

let prop_parity =
  QCheck.Test.make ~name:"static-clean => dynamic-monitor silent" ~count:500
    (QCheck.int_range 1 50_000_000)
    (fun seed ->
      let case = Gpr_check.Gen.generate seed in
      match Gpr_check.Diff.check_lint case with
      | () -> true
      | exception Gpr_check.Diff.Check_failed f ->
        QCheck.Test.fail_reportf "seed %d: %s" seed
          (Gpr_check.Diff.to_string f))

let () =
  Alcotest.run "lint"
    [
      ( "divergence",
        [
          Alcotest.test_case "positive" `Quick test_divergence_positive;
          Alcotest.test_case "negative" `Quick test_divergence_negative;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "positive" `Quick test_barrier_positive;
          Alcotest.test_case "divergent exit" `Quick test_barrier_divergent_exit;
          Alcotest.test_case "negative" `Quick test_barrier_negative;
        ] );
      ( "shared-race",
        [
          Alcotest.test_case "write-write" `Quick test_race_ww;
          Alcotest.test_case "read-write" `Quick test_race_rw;
          Alcotest.test_case "possible" `Quick test_race_possible;
          Alcotest.test_case "benign broadcast" `Quick test_race_benign_broadcast;
          Alcotest.test_case "negative" `Quick test_race_negative;
        ] );
      ( "compression",
        [
          Alcotest.test_case "narrow mask" `Quick test_compression_positive;
          Alcotest.test_case "malformed placement" `Quick
            test_compression_structural;
          Alcotest.test_case "overlap" `Quick test_compression_overlap;
          Alcotest.test_case "negative" `Quick test_compression_negative;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "definite" `Quick test_bounds_definite;
          Alcotest.test_case "possible" `Quick test_bounds_possible;
          Alcotest.test_case "negative" `Quick test_bounds_negative;
        ] );
      ( "defs",
        [
          Alcotest.test_case "use before assign" `Quick
            test_defs_use_before_assign;
          Alcotest.test_case "dead store" `Quick test_defs_dead_store;
          Alcotest.test_case "negative" `Quick test_defs_negative;
        ] );
      ( "bitwidth",
        [
          Alcotest.test_case "redundant mask" `Quick
            test_bitwidth_redundant_mask;
          Alcotest.test_case "dead high bits" `Quick
            test_bitwidth_dead_high_bits;
          Alcotest.test_case "shift out of range" `Quick
            test_bitwidth_shift_oob;
          Alcotest.test_case "negative" `Quick test_bitwidth_negative;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "hazard corpus" `Quick test_hazard_corpus;
          Alcotest.test_case "clean kernel" `Quick test_clean_kernel;
          Alcotest.test_case "registry no errors" `Quick test_registry_no_errors;
        ] );
      ("parity", [ QCheck_alcotest.to_alcotest prop_parity ]);
    ]
