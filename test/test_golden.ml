(* Golden-stats regression: a fixed Rodinia workload (hotspot) through
   the full pipeline — trace, allocation, occupancy, timing model in
   Baseline and Proposed modes with the simulator's invariant checks
   enabled.  IPC is pinned with a loose tolerance so refactors that
   accidentally change pipeline behaviour fail fast, while legitimate
   model retunes only need one constant updated; occupancy is exact. *)

module Compress = Gpr_core.Compress
module Sim = Gpr_sim.Sim
module Q = Gpr_quality.Quality
module W = Gpr_workloads.Workload
module P = Gpr_precision.Precision

let cfg = Gpr_arch.Config.fermi_gtx480

let hotspot () =
  match Gpr_workloads.Registry.by_name "hotspot" with
  | Some w -> w
  | None -> Alcotest.fail "hotspot workload missing"

let check_close name ~tolerance expected actual =
  let ok = Float.abs (actual -. expected) <= tolerance *. expected in
  if not ok then
    Alcotest.failf "%s: expected %.4f +/- %.0f%%, got %.4f" name expected
      (tolerance *. 100.) actual

let test_golden_hotspot () =
  let w = hotspot () in
  let c = Compress.analyze w in
  let data = Compress.threshold_data c Q.High in
  let trace = W.trace w ~quantize:None in
  let trace_q = W.trace w ~quantize:(Some (P.quantizer data.Compress.assignment)) in
  let occ_base = (Compress.occupancy c c.Compress.baseline).Gpr_arch.Occupancy.blocks_per_sm in
  let occ_comp =
    (Compress.occupancy c data.Compress.alloc_both).Gpr_arch.Occupancy.blocks_per_sm
  in
  (* Occupancy is a small integer: pin it exactly, and the compressed
     register file must never fit fewer blocks than the baseline. *)
  Alcotest.(check int) "baseline blocks/SM" 4 occ_base;
  Alcotest.(check int) "compressed blocks/SM" 6 occ_comp;
  Alcotest.(check bool) "occupancy never regresses" true (occ_comp >= occ_base);
  let sbase =
    Sim.run ~check:true cfg ~trace ~alloc:c.Compress.baseline
      ~blocks_per_sm:occ_base ~mode:Sim.Baseline
  in
  let sprop =
    Sim.run ~check:true cfg ~trace:trace_q ~alloc:data.Compress.alloc_both
      ~blocks_per_sm:occ_comp ~mode:(Sim.Proposed { writeback_delay = 3 })
  in
  check_close "baseline sm_ipc" ~tolerance:0.10 34.8521 sbase.Sim.sm_ipc;
  check_close "proposed sm_ipc" ~tolerance:0.10 37.1730 sprop.Sim.sm_ipc;
  (* The paper's headline direction: compression must not hurt. *)
  Alcotest.(check bool) "proposed ipc >= baseline" true
    (sprop.Sim.sm_ipc >= sbase.Sim.sm_ipc);
  (* Stall attribution on a real kernel: the slot identity holds
     exactly (not within tolerance), scoreboard waits dominate this
     latency-bound kernel, and only Spill mode may touch the spill
     port. *)
  let module Stall = Gpr_obs.Stall in
  List.iter
    (fun (label, (s : Sim.stats)) ->
      Alcotest.(check int) (label ^ " slot identity")
        (s.Sim.cycles * cfg.warp_schedulers)
        (Stall.total_slots (Sim.breakdown s));
      Alcotest.(check int) (label ^ " issued slots") s.Sim.warp_instructions
        s.Sim.issued_slots;
      Alcotest.(check bool) (label ^ " scoreboard dominates stalls") true
        (s.Sim.stall_scoreboard > s.Sim.stall_no_cu
         && s.Sim.stall_scoreboard > s.Sim.stall_barrier);
      Alcotest.(check int) (label ^ " no spill-port stalls") 0
        s.Sim.stall_spill_port)
    [ ("baseline", sbase); ("proposed", sprop) ]

let () =
  Alcotest.run "golden"
    [
      ( "hotspot",
        [ Alcotest.test_case "pipeline stats" `Quick test_golden_hotspot ] );
    ]
