(* Unit and property tests for gpr_util: intervals, bit math, RNG,
   statistics, images and table rendering. *)

module I = Gpr_util.Interval
module Bits = Gpr_util.Bits

(* ---------------------------------------------------------------- *)
(* Interval: directed cases *)

let itv = Alcotest.testable (fun ppf t -> I.pp ppf t) I.equal

let test_interval_basics () =
  Alcotest.check itv "join" (I.of_ints 0 10) (I.join (I.of_ints 0 3) (I.of_ints 7 10));
  Alcotest.check itv "meet" (I.of_ints 7 8) (I.meet (I.of_ints 0 8) (I.of_ints 7 10));
  Alcotest.check itv "meet disjoint" I.bot (I.meet (I.of_ints 0 3) (I.of_ints 7 10));
  Alcotest.check itv "add" (I.of_ints 7 13) (I.add (I.of_ints 0 3) (I.of_ints 7 10));
  Alcotest.check itv "sub" (I.of_ints (-10) (-4)) (I.sub (I.of_ints 0 3) (I.of_ints 7 10));
  Alcotest.check itv "neg" (I.of_ints (-3) 2) (I.neg (I.of_ints (-2) 3));
  Alcotest.check itv "mul signs" (I.of_ints (-20) 30)
    (I.mul (I.of_ints (-2) 3) (I.of_ints (-5) 10));
  Alcotest.check itv "abs straddle" (I.of_ints 0 5) (I.abs (I.of_ints (-5) 3));
  Alcotest.check itv "min" (I.of_ints (-2) 3) (I.min_ (I.of_ints (-2) 8) (I.of_ints 0 3));
  Alcotest.check itv "max" (I.of_ints 0 8) (I.max_ (I.of_ints (-2) 8) (I.of_ints 0 3))

let test_interval_div () =
  Alcotest.check itv "div pos" (I.of_ints 2 20) (I.div (I.of_ints 20 40) (I.of_ints 2 8));
  Alcotest.check itv "div by zero only" I.bot (I.div (I.of_ints 1 2) (I.of_const 0));
  (* Divisor straddling zero: result bounded by dividend magnitude. *)
  let r = I.div (I.of_ints (-10) 20) (I.of_ints (-2) 2) in
  Alcotest.(check bool) "straddle sound" true (I.subset (I.of_ints (-10) 20) r)

let test_interval_shift () =
  Alcotest.check itv "shl const" (I.of_ints 8 40) (I.shl (I.of_ints 1 5) (I.of_const 3));
  Alcotest.check itv "shr const" (I.of_ints 1 5) (I.shr (I.of_ints 8 40) (I.of_const 3));
  (* Arithmetic shift floors: -2 asr 3 = -1 (regression caught by the
     range-soundness property test). *)
  Alcotest.check itv "shr negative" (I.of_ints (-1) 1)
    (I.shr (I.of_ints (-2) 8) (I.of_const 3));
  Alcotest.check itv "shr all negative" (I.of_ints (-13) (-1))
    (I.shr (I.of_ints (-100) (-3)) (I.of_const 3))

let test_interval_widen_narrow () =
  let a = I.of_ints 0 5 and b = I.of_ints 0 9 in
  Alcotest.check itv "widen hi" (I.range (I.Finite 0) I.Pos_inf) (I.widen a b);
  Alcotest.check itv "widen stable" a (I.widen a (I.of_ints 2 4));
  let w = I.widen a b in
  Alcotest.check itv "narrow recovers" (I.of_ints 0 9) (I.narrow w b)

let test_interval_rem () =
  let r = I.rem (I.of_ints 0 100) (I.of_const 8) in
  Alcotest.(check bool) "rem within [0,7]" true (I.subset r (I.of_ints 0 7))

let test_interval_clamp () =
  Alcotest.check itv "clamp id" (I.of_ints 0 5) (I.clamp_i32 (I.of_ints 0 5));
  Alcotest.check itv "clamp overflow" I.i32
    (I.clamp_i32 (I.of_ints 0 0x1_0000_0000))

(* ---------------------------------------------------------------- *)
(* Interval: qcheck soundness properties *)

let gen_small = QCheck.Gen.int_range (-1000) 1000

let gen_interval =
  QCheck.Gen.(
    map2
      (fun a b -> I.of_ints (min a b) (max a b))
      gen_small gen_small)

let arb_interval = QCheck.make ~print:I.to_string gen_interval

let arb_interval_with_member =
  let gen =
    QCheck.Gen.(
      gen_interval >>= fun itv ->
      match itv with
      | I.Range (I.Finite lo, I.Finite hi) ->
        map (fun x -> (itv, x)) (int_range lo hi)
      | _ -> assert false)
  in
  QCheck.make ~print:(fun (i, x) -> Printf.sprintf "%s ∋ %d" (I.to_string i) x) gen

let prop_sound name concrete abstract =
  QCheck.Test.make ~name ~count:500
    (QCheck.pair arb_interval_with_member arb_interval_with_member)
    (fun ((ia, a), (ib, b)) ->
       match concrete a b with
       | None -> QCheck.assume_fail ()
       | Some c -> I.contains (abstract ia ib) c)

let interval_soundness_tests =
  [
    prop_sound "add sound" (fun a b -> Some (a + b)) I.add;
    prop_sound "sub sound" (fun a b -> Some (a - b)) I.sub;
    prop_sound "mul sound" (fun a b -> Some (a * b)) I.mul;
    prop_sound "div sound" (fun a b -> if b = 0 then None else Some (a / b)) I.div;
    prop_sound "rem sound" (fun a b -> if b = 0 then None else Some (a mod b)) I.rem;
    prop_sound "min sound" (fun a b -> Some (min a b)) I.min_;
    prop_sound "max sound" (fun a b -> Some (max a b)) I.max_;
    prop_sound "shr sound"
      (fun a b -> Some (a asr (b land 7)))
      (fun ia _ib -> I.shr ia (I.of_ints 0 7));
  ]

let prop_join_contains =
  QCheck.Test.make ~name:"join contains both" ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) ->
       let j = I.join a b in
       I.subset a j && I.subset b j)

let prop_meet_subset =
  QCheck.Test.make ~name:"meet subset of both" ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) ->
       let m = I.meet a b in
       I.subset m a && I.subset m b)

let prop_widen_upper =
  QCheck.Test.make ~name:"widen is an upper bound" ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) ->
       let w = I.widen a b in
       I.subset a w && I.subset b w)

(* Lattice laws over a generator that also hits the extreme elements:
   join/meet form a bounded lattice with [bot] and [top]. *)
let arb_interval_ext =
  let gen =
    QCheck.Gen.(
      frequency
        [
          (8, gen_interval);
          (1, return I.bot);
          (1, return I.top);
          (1, return I.i32);
          (1, map (fun a -> I.range (I.Finite a) I.Pos_inf) gen_small);
        ])
  in
  QCheck.make ~print:I.to_string gen

let prop_lattice_commutes =
  QCheck.Test.make ~name:"join/meet commute" ~count:500
    (QCheck.pair arb_interval_ext arb_interval_ext)
    (fun (a, b) ->
       I.equal (I.join a b) (I.join b a) && I.equal (I.meet a b) (I.meet b a))

let prop_lattice_idempotent =
  QCheck.Test.make ~name:"join/meet idempotent" ~count:500 arb_interval_ext
    (fun a -> I.equal (I.join a a) a && I.equal (I.meet a a) a)

let prop_lattice_assoc =
  QCheck.Test.make ~name:"join/meet associate" ~count:500
    (QCheck.triple arb_interval_ext arb_interval_ext arb_interval_ext)
    (fun (a, b, c) ->
       I.equal (I.join a (I.join b c)) (I.join (I.join a b) c)
       && I.equal (I.meet a (I.meet b c)) (I.meet (I.meet a b) c))

(* Intervals are not a distributive lattice in general, but absorption
   holds whenever meet is exact — which it is, since the meet of two
   intervals is an interval. *)
let prop_lattice_absorption =
  QCheck.Test.make ~name:"absorption laws" ~count:500
    (QCheck.pair arb_interval_ext arb_interval_ext)
    (fun (a, b) ->
       I.equal (I.join a (I.meet a b)) a && I.equal (I.meet a (I.join a b)) a)

let prop_lattice_units =
  QCheck.Test.make ~name:"bot/top are units" ~count:500 arb_interval_ext
    (fun a ->
       I.equal (I.join a I.bot) a
       && I.equal (I.meet a I.top) a
       && I.equal (I.meet a I.bot) I.bot
       && I.equal (I.join a I.top) I.top)

let prop_subset_order =
  QCheck.Test.make ~name:"subset agrees with join/meet" ~count:500
    (QCheck.pair arb_interval_ext arb_interval_ext)
    (fun (a, b) ->
       (I.subset a b = I.equal (I.join a b) b)
       && (I.subset a b = I.equal (I.meet a b) a))

let prop_band_sound =
  QCheck.Test.make ~name:"band sound for non-negative" ~count:500
    (QCheck.pair (QCheck.int_bound 1000) (QCheck.int_bound 1000))
    (fun (a, b) ->
       I.contains (I.band (I.of_ints 0 1000) (I.of_ints 0 1000)) (a land b)
       && I.contains (I.bor (I.of_ints 0 1000) (I.of_ints 0 1000)) (a lor b)
       && I.contains (I.bxor (I.of_ints 0 1000) (I.of_ints 0 1000)) (a lxor b))

(* ---------------------------------------------------------------- *)
(* Bits *)

let test_bits_widths () =
  Alcotest.(check int) "unsigned 0" 1 (Bits.bits_for_unsigned 0);
  Alcotest.(check int) "unsigned 1" 1 (Bits.bits_for_unsigned 1);
  Alcotest.(check int) "unsigned 255" 8 (Bits.bits_for_unsigned 255);
  Alcotest.(check int) "unsigned 256" 9 (Bits.bits_for_unsigned 256);
  Alcotest.(check int) "signed 0" 1 (Bits.bits_for_signed 0);
  Alcotest.(check int) "signed -1" 1 (Bits.bits_for_signed (-1));
  Alcotest.(check int) "signed 1" 2 (Bits.bits_for_signed 1);
  Alcotest.(check int) "signed -128" 8 (Bits.bits_for_signed (-128));
  Alcotest.(check int) "signed 127" 8 (Bits.bits_for_signed 127);
  Alcotest.(check int) "signed 128" 9 (Bits.bits_for_signed 128);
  Alcotest.(check int) "range [0,50]" 7 (Bits.bits_for_signed_range 0 50);
  Alcotest.(check int) "urange [0,50]" 6 (Bits.bits_for_unsigned_range 0 50)

let test_bits_extend () =
  Alcotest.(check int) "sign extend -1" (-1) (Bits.sign_extend ~width:4 0xf);
  Alcotest.(check int) "sign extend 7" 7 (Bits.sign_extend ~width:4 0x7);
  Alcotest.(check int) "zero extend" 0xf (Bits.zero_extend ~width:4 0xff);
  Alcotest.(check bool) "fits signed" true (Bits.fits_signed ~width:8 (-128));
  Alcotest.(check bool) "fits signed no" false (Bits.fits_signed ~width:8 128);
  Alcotest.(check bool) "fits unsigned" true (Bits.fits_unsigned ~width:8 255)

let test_bits_slices () =
  Alcotest.(check int) "1 bit -> 1 slice" 1 (Bits.slices_of_bits 1);
  Alcotest.(check int) "4 bits" 1 (Bits.slices_of_bits 4);
  Alcotest.(check int) "5 bits" 2 (Bits.slices_of_bits 5);
  Alcotest.(check int) "32 bits" 8 (Bits.slices_of_bits 32);
  Alcotest.(check int) "popcount" 3 (Bits.popcount 0b10101)

let prop_sign_extend_roundtrip =
  QCheck.Test.make ~name:"sign_extend inverts masking" ~count:500
    (QCheck.pair (QCheck.int_range 1 30) (QCheck.int_range (-10000) 10000))
    (fun (w, x) ->
       QCheck.assume (Bits.fits_signed ~width:w x);
       Bits.sign_extend ~width:w (x land Bits.mask w) = x)

(* Pack/unpack identity: storing a value in [width] low bits and
   reading it back through the matching extension is the identity on
   every value that fits — exactly the contract the slice-packed
   register datapath relies on. *)
let prop_pack_unpack_signed =
  QCheck.Test.make ~name:"signed pack/unpack identity" ~count:500
    (QCheck.pair (QCheck.int_range 1 30) (QCheck.int_range (-100000) 100000))
    (fun (w, x) ->
       QCheck.assume (Bits.fits_signed ~width:w x);
       Bits.sign_extend ~width:w (x land Bits.mask w) = x)

let prop_pack_unpack_unsigned =
  QCheck.Test.make ~name:"unsigned pack/unpack identity" ~count:500
    (QCheck.pair (QCheck.int_range 1 30) (QCheck.int_range 0 200000))
    (fun (w, x) ->
       QCheck.assume (Bits.fits_unsigned ~width:w x);
       Bits.zero_extend ~width:w (x land Bits.mask w) = x)

let prop_extend_canonical =
  (* Both extensions are projections: re-masking the extended value
     recovers the stored bit pattern for arbitrary inputs. *)
  QCheck.Test.make ~name:"extend then mask is mask" ~count:500
    (QCheck.pair (QCheck.int_range 1 30) (QCheck.int_range (-100000) 100000))
    (fun (w, x) ->
       Bits.sign_extend ~width:w x land Bits.mask w = x land Bits.mask w
       && Bits.zero_extend ~width:w x = x land Bits.mask w)

let prop_bits_for_minimal =
  QCheck.Test.make ~name:"bits_for widths are minimal" ~count:500
    (QCheck.int_range (-100000) 100000)
    (fun x ->
       let w = Bits.bits_for_signed x in
       Bits.fits_signed ~width:w x
       && (w = 1 || not (Bits.fits_signed ~width:(w - 1) x))
       &&
       if x >= 0 then
         let u = Bits.bits_for_unsigned x in
         Bits.fits_unsigned ~width:u x
         && (u = 1 || not (Bits.fits_unsigned ~width:(u - 1) x))
       else true)

let prop_popcount =
  QCheck.Test.make ~name:"popcount matches naive count" ~count:500
    (QCheck.int_range 0 0x3fffffff)
    (fun x ->
       let naive = ref 0 in
       for i = 0 to 62 do
         if (x lsr i) land 1 = 1 then incr naive
       done;
       Bits.popcount x = !naive)

let prop_slices =
  QCheck.Test.make ~name:"slices_of_bits is a clamped ceiling" ~count:200
    (QCheck.int_range 1 64)
    (fun b ->
       let s = Bits.slices_of_bits b in
       s = max 1 (min 8 ((b + 3) / 4)))

(* ---------------------------------------------------------------- *)
(* Rng determinism and distribution sanity *)

let test_rng_deterministic () =
  let a = Gpr_util.Rng.create 42 and b = Gpr_util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Gpr_util.Rng.int a 1000)
      (Gpr_util.Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Gpr_util.Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Gpr_util.Rng.int r 10 in
    Alcotest.(check bool) "in bounds" true (x >= 0 && x < 10);
    let f = Gpr_util.Rng.uniform r in
    Alcotest.(check bool) "uniform bounds" true (f >= 0.0 && f < 1.0)
  done

let test_rng_mean () =
  let r = Gpr_util.Rng.create 11 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do sum := !sum +. Gpr_util.Rng.uniform r done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_rng_shuffle_permutation () =
  let r = Gpr_util.Rng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Gpr_util.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* ---------------------------------------------------------------- *)
(* Stats *)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Gpr_util.Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0
    (Gpr_util.Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-6)) "geomean_ratio of equal" 10.0
    (Gpr_util.Stats.geomean_ratio [ 10.0; 10.0 ]);
  let lo, hi = Gpr_util.Stats.min_max [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check (float 0.0)) "min" 1.0 lo;
  Alcotest.(check (float 0.0)) "max" 3.0 hi;
  Alcotest.(check (float 1e-9)) "median" 2.0
    (Gpr_util.Stats.percentile [ 1.0; 2.0; 3.0 ] 50.0)

(* The rank used to go out of bounds for p outside [0, 100]; it now
   clamps to the extreme order statistics. *)
let test_percentile_edges () =
  let xs = [ 5.0; 1.0; 3.0 ] in
  let pc p = Gpr_util.Stats.percentile xs p in
  Alcotest.(check (float 0.0)) "p=0 is the minimum" 1.0 (pc 0.0);
  Alcotest.(check (float 0.0)) "p=100 is the maximum" 5.0 (pc 100.0);
  Alcotest.(check (float 0.0)) "p<0 clamps to the minimum" 1.0 (pc (-10.0));
  Alcotest.(check (float 0.0)) "p>100 clamps to the maximum" 5.0 (pc 1000.0);
  Alcotest.(check (float 0.0)) "singleton, any p" 7.0
    (Gpr_util.Stats.percentile [ 7.0 ] 250.0);
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Gpr_util.Stats.percentile [] 50.0));
  Alcotest.(check bool) "nan p is nan" true
    (Float.is_nan (pc Float.nan))

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:500
    QCheck.(
      triple
        (list_of_size Gen.(int_range 1 20) (float_range (-100.0) 100.0))
        (float_range (-50.0) 150.0)
        (float_range (-50.0) 150.0))
    (fun (xs, p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Gpr_util.Stats.percentile xs lo <= Gpr_util.Stats.percentile xs hi)

(* ---------------------------------------------------------------- *)
(* Image *)

let test_image () =
  let img = Gpr_util.Image.init ~width:4 ~height:3 (fun ~x ~y -> float_of_int (x + y)) in
  Alcotest.(check (float 0.0)) "get" 3.0 (Gpr_util.Image.get img ~x:2 ~y:1);
  Alcotest.(check (float 0.0)) "clamped" 5.0
    (Gpr_util.Image.get_clamped img ~x:10 ~y:10);
  Gpr_util.Image.set img ~x:0 ~y:0 9.0;
  Alcotest.(check (float 0.0)) "set" 9.0 (Gpr_util.Image.get img ~x:0 ~y:0);
  let doubled = Gpr_util.Image.map (fun v -> v *. 2.0) img in
  Alcotest.(check (float 0.0)) "map" 18.0 (Gpr_util.Image.get doubled ~x:0 ~y:0)

(* ---------------------------------------------------------------- *)
(* Tab *)

let test_tab_render () =
  let s =
    Gpr_util.Tab.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "20" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 4 (List.length lines);
  (* All lines padded to the same visible width pattern: header and rows
     share column widths. *)
  Alcotest.(check bool) "right aligned numbers" true
    (String.length (List.nth lines 2) >= String.length "alpha  1")

let () =
  let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests) in
  Alcotest.run "util"
    [
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "div" `Quick test_interval_div;
          Alcotest.test_case "shift" `Quick test_interval_shift;
          Alcotest.test_case "widen/narrow" `Quick test_interval_widen_narrow;
          Alcotest.test_case "rem" `Quick test_interval_rem;
          Alcotest.test_case "clamp" `Quick test_interval_clamp;
        ] );
      qsuite "interval-props"
        (interval_soundness_tests
         @ [
             prop_join_contains; prop_meet_subset; prop_widen_upper;
             prop_band_sound; prop_lattice_commutes; prop_lattice_idempotent;
             prop_lattice_assoc; prop_lattice_absorption; prop_lattice_units;
             prop_subset_order;
           ]);
      ( "bits",
        [
          Alcotest.test_case "widths" `Quick test_bits_widths;
          Alcotest.test_case "extend" `Quick test_bits_extend;
          Alcotest.test_case "slices" `Quick test_bits_slices;
        ] );
      qsuite "bits-props"
        [
          prop_sign_extend_roundtrip; prop_pack_unpack_signed;
          prop_pack_unpack_unsigned; prop_extend_canonical;
          prop_bits_for_minimal; prop_popcount; prop_slices;
        ];
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "mean" `Quick test_rng_mean;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "percentile edges" `Quick test_percentile_edges;
        ] );
      qsuite "stats-props" [ prop_percentile_monotone ];
      ("image", [ Alcotest.test_case "image" `Quick test_image ]);
      ("tab", [ Alcotest.test_case "render" `Quick test_tab_render ]);
    ]
