(* Concurrent-kernel SM tests: singleton-set equivalence against the
   single-kernel engines (registry kernels x backends x policies, plus
   generated kernels), multi-tenant invariants and fairness, dispatch
   policies, and the combined-limit admission edges of
   [Gpr_arch.Occupancy]. *)

open Gpr_isa.Types
module E = Gpr_exec.Exec
module T = Gpr_exec.Trace
module Sim = Gpr_sim.Sim
module Multi = Gpr_sim.Sim_multi
module A = Gpr_alloc.Alloc
module Occ = Gpr_arch.Occupancy
module W = Gpr_workloads.Workload
module Backend = Gpr_backend.Backend
module Gen = Gpr_check.Gen

let cfg = Gpr_arch.Config.fermi_gtx480
let fast_tests = Sys.getenv_opt "GPR_FAST_TESTS" = Some "1"

let stats_fields (s : Sim.stats) =
  [
    ("cycles", string_of_int s.cycles);
    ("thread_instructions", string_of_int s.thread_instructions);
    ("warp_instructions", string_of_int s.warp_instructions);
    ("sm_ipc", Printf.sprintf "%h" s.sm_ipc);
    ("gpu_ipc", Printf.sprintf "%h" s.gpu_ipc);
    ("issued_per_cycle", Printf.sprintf "%h" s.issued_per_cycle);
    ("l1_hit_rate", Printf.sprintf "%h" s.l1_hit_rate);
    ("tex_hit_rate", Printf.sprintf "%h" s.tex_hit_rate);
    ("l2_hit_rate", Printf.sprintf "%h" s.l2_hit_rate);
    ("tex_accesses", string_of_int s.tex_accesses);
    ("double_fetches", string_of_int s.double_fetches);
    ("conversions", string_of_int s.conversions);
    ("issued_slots", string_of_int s.issued_slots);
    ("stall_scoreboard", string_of_int s.stall_scoreboard);
    ("stall_no_cu", string_of_int s.stall_no_cu);
    ("stall_bank_conflict", string_of_int s.stall_bank_conflict);
    ("stall_spill_port", string_of_int s.stall_spill_port);
    ("stall_barrier", string_of_int s.stall_barrier);
    ("stall_empty", string_of_int s.stall_empty);
    ("bank_conflicts", string_of_int s.bank_conflicts);
    ("idle_cycles", string_of_int s.idle_cycles);
    ("spill_loads", string_of_int s.spill_loads);
    ("spill_stores", string_of_int s.spill_stores);
  ]

(* A singleton tenant set must reproduce [Sim.run] byte-for-byte, under
   every policy (policies cannot differ when only one kernel is
   pending). *)
let assert_singleton_matches label ~trace ~alloc ~demand ~mode ~waves =
  let occ = Occ.of_demand cfg demand ~warps_per_block:trace.T.warps_per_block in
  let blocks_per_sm = occ.Occ.blocks_per_sm in
  let single =
    try
      Ok (Sim.run ~check:true ~waves cfg ~trace ~alloc ~blocks_per_sm ~mode)
    with Sim.Invariant_violation m -> Error m
  in
  let tenant =
    {
      Multi.t_label = label;
      t_trace = trace;
      t_alloc = alloc;
      t_mode = mode;
      t_demand = demand;
      t_blocks = max 1 (waves * blocks_per_sm);
    }
  in
  List.iter
    (fun policy ->
      let module P = (val policy : Multi.POLICY) in
      let multi =
        try Ok (Multi.run ~check:true ~policy cfg [ tenant ])
        with Sim.Invariant_violation m -> Error m
      in
      match (single, multi) with
      | Ok s, Ok m ->
        if Stdlib.compare s m.Multi.r_stats <> 0 then begin
          let diffs =
            List.concat
              (List.map2
                 (fun (n, a) (_, b) ->
                   if a = b then []
                   else [ Printf.sprintf "%s: single=%s multi=%s" n a b ])
                 (stats_fields s)
                 (stats_fields m.Multi.r_stats))
          in
          Alcotest.failf "%s (policy=%s, waves=%d): singleton diverges on %s"
            label P.id waves
            (String.concat "; " diffs)
        end;
        (* The lone tenant owns the whole run. *)
        let t = m.Multi.r_tenants.(0) in
        Alcotest.(check int)
          (label ^ ": tenant issued slots") s.Sim.issued_slots
          t.Multi.ts_issued_slots;
        Alcotest.(check int)
          (label ^ ": tenant thread instructions") s.Sim.thread_instructions
          t.Multi.ts_thread_instructions;
        Alcotest.(check int)
          (label ^ ": co-residency is zero for one kernel") 0
          m.Multi.r_co_resident_cycles;
        Alcotest.(check (float 1e-9)) (label ^ ": fairness trivially 1") 1.0
          m.Multi.r_fairness
      | Error ms, Error mm ->
        if ms <> mm then
          Alcotest.failf "%s (policy=%s): different violations: %S vs %S"
            label P.id ms mm
      | Error m, Ok _ ->
        Alcotest.failf "%s (policy=%s): only Sim.run violates: %s" label P.id m
      | Ok _, Error m ->
        Alcotest.failf "%s (policy=%s): only Sim_multi violates: %s" label
          P.id m)
    Multi.policies

let registry_kernels () =
  if fast_tests then
    List.filter
      (fun (w : W.t) -> w.name = "Hotspot" || w.name = "DWT2D")
      Gpr_workloads.Registry.all
  else Gpr_workloads.Registry.all

let test_registry_singleton () =
  List.iter
    (fun (w : W.t) ->
      let trace = W.trace w ~quantize:None in
      let width = Gpr_analysis.Width.analyze w.kernel ~launch:w.launch in
      List.iter
        (fun (scheme : Backend.t) ->
          let module S = (val scheme) in
          let res = S.analyze ~kernel:w.kernel ~width ~precision:None in
          let demand =
            Backend.demand cfg res
              ~warps_per_block:(W.warps_per_block w)
              ~shared_bytes_per_block:(W.shared_bytes_per_block w)
          in
          assert_singleton_matches
            (Printf.sprintf "%s/%s" w.name S.id)
            ~trace ~alloc:res.Backend.alloc ~demand
            ~mode:(Backend.sim_mode scheme res)
            ~waves:1)
        Gpr_backend.Registry.all)
    (registry_kernels ())

(* Generated kernels through the same three modes as the fast/ref
   equivalence property, at two wave counts. *)
let check_generated_seed seed =
  match
    (try
       let case = Gen.generate seed in
       let data = case.Gen.data () in
       let bindings =
         E.bindings_for case.Gen.kernel ~data ~shared:case.Gen.shared ()
       in
       E.run case.Gen.kernel ~launch:case.Gen.launch ~params:case.Gen.params
         ~bindings
         { E.default_config with collect_trace = true; max_steps = Some 500_000 }
       |> Option.map (fun t -> (case, t))
     with _ -> None)
  with
  | None -> ()
  | Some (case, trace) ->
    let wt =
      Gpr_analysis.Width.analyze case.Gen.kernel ~launch:case.Gen.launch
    in
    let width_of (r : vreg) =
      match r.ty with
      | Pred | F32 -> 32
      | S32 | U32 -> Gpr_analysis.Width.var_bitwidth wt r.id
    in
    let shared_bytes =
      4 * List.fold_left (fun acc (_, n) -> acc + n) 0 case.Gen.shared
    in
    let demand_of regs spill_bytes =
      {
        Occ.d_regs_per_thread = max 1 regs;
        d_shared_bytes_per_block =
          shared_bytes + (spill_bytes * 32 * trace.T.warps_per_block);
      }
    in
    let alloc_base = A.baseline case.Gen.kernel in
    let alloc_comp = A.run case.Gen.kernel ~width_of in
    let module Sp = Gpr_backend.Backend_spill in
    let res = Sp.analyze ~kernel:case.Gen.kernel ~width:wt ~precision:None in
    List.iter
      (fun waves ->
        assert_singleton_matches
          (Printf.sprintf "gen%d/baseline" seed)
          ~trace ~alloc:alloc_base
          ~demand:(demand_of alloc_base.A.pressure 0)
          ~mode:Sim.Baseline ~waves;
        assert_singleton_matches
          (Printf.sprintf "gen%d/proposed" seed)
          ~trace ~alloc:alloc_comp
          ~demand:(demand_of alloc_comp.A.pressure 0)
          ~mode:(Sim.Proposed { writeback_delay = 3 })
          ~waves;
        assert_singleton_matches
          (Printf.sprintf "gen%d/spill" seed)
          ~trace ~alloc:res.Backend.alloc
          ~demand:
            (demand_of res.Backend.alloc.A.pressure
               (Backend.spill_bytes_per_thread res))
          ~mode:(Backend.sim_mode (module Sp) res)
          ~waves)
      [ 1; 6 ]

let singleton_count =
  match Sys.getenv_opt "GPR_SIM_EQ_COUNT" with
  | Some s -> ( try max 1 (int_of_string s / 4) with _ -> 10)
  | None -> if fast_tests then 4 else 10

let prop_singleton_agrees =
  QCheck.Test.make ~name:"run_multi singleton = Sim.run on generated kernels"
    ~count:singleton_count
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      check_generated_seed seed;
      true)

(* ---------------------------------------------------------------- *)
(* Multi-tenant runs: invariants, attribution, fairness. *)

let tenant_of (w : W.t) (scheme : Backend.t) ~waves =
  let module S = (val scheme) in
  let trace = W.trace w ~quantize:None in
  let width = Gpr_analysis.Width.analyze w.kernel ~launch:w.launch in
  let res = S.analyze ~kernel:w.kernel ~width ~precision:None in
  let demand =
    Backend.demand cfg res
      ~warps_per_block:(W.warps_per_block w)
      ~shared_bytes_per_block:(W.shared_bytes_per_block w)
  in
  let occ = Occ.of_demand cfg demand ~warps_per_block:(W.warps_per_block w) in
  {
    Multi.t_label = w.name;
    t_trace = trace;
    t_alloc = res.Backend.alloc;
    t_mode = Backend.sim_mode scheme res;
    t_demand = demand;
    t_blocks = max 1 (waves * occ.Occ.blocks_per_sm);
  }

let pair_kernels () =
  let by_name n = Option.get (Gpr_workloads.Registry.by_name n) in
  (by_name "Hotspot", by_name "DWT2D")

let test_pair_invariants () =
  let a, b = pair_kernels () in
  List.iter
    (fun (scheme : Backend.t) ->
      let module S = (val scheme) in
      let ta = tenant_of a scheme ~waves:2 in
      let tb = tenant_of b scheme ~waves:2 in
      List.iter
        (fun policy ->
          let module P = (val policy : Multi.POLICY) in
          (* check:true enforces the per-kernel and aggregate identities
             inside the engine; here we re-check the user-visible
             surface. *)
          let r = Multi.run ~check:true ~policy cfg [ ta; tb ] in
          let label = Printf.sprintf "%s/%s" S.id P.id in
          Alcotest.(check int)
            (label ^ ": both kernels fully launched")
            (ta.Multi.t_blocks + tb.Multi.t_blocks)
            r.Multi.r_admissions;
          Alcotest.(check int)
            (label ^ ": per-kernel issued slots tile the aggregate")
            r.Multi.r_stats.Sim.issued_slots
            (Array.fold_left
               (fun acc t -> acc + t.Multi.ts_issued_slots)
               0 r.Multi.r_tenants);
          Alcotest.(check int)
            (label ^ ": per-kernel thread instructions tile the aggregate")
            r.Multi.r_stats.Sim.thread_instructions
            (Array.fold_left
               (fun acc t -> acc + t.Multi.ts_thread_instructions)
               0 r.Multi.r_tenants);
          let share =
            Array.fold_left
              (fun acc t -> acc +. t.Multi.ts_issue_share)
              0.0 r.Multi.r_tenants
          in
          Alcotest.(check bool)
            (label ^ ": issue shares sum to 1")
            true
            (abs_float (share -. 1.0) < 1e-9);
          Alcotest.(check bool)
            (label ^ ": kernels actually co-resided")
            true
            (r.Multi.r_co_resident_cycles > 0);
          Alcotest.(check bool)
            (label ^ ": fairness within [1/n, 1]")
            true
            (r.Multi.r_fairness >= 0.5 -. 1e-9
            && r.Multi.r_fairness <= 1.0 +. 1e-9);
          Alcotest.(check bool)
            (label ^ ": peak residency within SM block slots")
            true
            (r.Multi.r_peak_resident_blocks <= cfg.max_blocks);
          Alcotest.(check bool)
            (label ^ ": peak warps within SM warp slots")
            true
            (r.Multi.r_peak_resident_warps <= cfg.max_warps))
        Multi.policies)
    Gpr_backend.Registry.all

(* Each kernel's co-scheduled instruction replay must match its
   isolated run: co-residency changes timing, never the work. *)
let test_pair_replay_matches_isolated () =
  let a, b = pair_kernels () in
  let scheme = (module Gpr_backend.Backend_baseline : Backend.Scheme) in
  let ta = tenant_of a scheme ~waves:2 in
  let tb = tenant_of b scheme ~waves:2 in
  let r = Multi.run ~check:true cfg [ ta; tb ] in
  List.iteri
    (fun i t ->
      let iso = Multi.run ~check:true cfg [ t ] in
      let co = r.Multi.r_tenants.(i) in
      let alone = iso.Multi.r_tenants.(0) in
      Alcotest.(check int)
        (t.Multi.t_label ^ ": same warp instructions as isolated")
        alone.Multi.ts_warp_instructions co.Multi.ts_warp_instructions;
      Alcotest.(check int)
        (t.Multi.t_label ^ ": same thread instructions as isolated")
        alone.Multi.ts_thread_instructions co.Multi.ts_thread_instructions;
      Alcotest.(check int)
        (t.Multi.t_label ^ ": same blocks launched as isolated")
        alone.Multi.ts_blocks_launched co.Multi.ts_blocks_launched)
    [ ta; tb ]

let test_policies_admit_same_total () =
  let a, b = pair_kernels () in
  let scheme = (module Gpr_backend.Backend_slice : Backend.Scheme) in
  let ta = tenant_of a scheme ~waves:2 in
  let tb = tenant_of b scheme ~waves:2 in
  let totals =
    List.map
      (fun policy ->
        (Multi.run ~check:true ~policy cfg [ ta; tb ]).Multi.r_admissions)
      Multi.policies
  in
  Alcotest.(check (list int))
    "every policy eventually launches every block"
    [ ta.Multi.t_blocks + tb.Multi.t_blocks;
      ta.Multi.t_blocks + tb.Multi.t_blocks;
      ta.Multi.t_blocks + tb.Multi.t_blocks ]
    totals

let test_find_policy () =
  List.iter
    (fun name ->
      match Multi.find_policy name with
      | Some (module P : Multi.POLICY) ->
        Alcotest.(check string) "round-trips" name P.id
      | None -> Alcotest.failf "policy %s not found" name)
    Multi.policy_names;
  Alcotest.(check bool) "unknown policy rejected" true
    (Multi.find_policy "sjf" = None);
  Alcotest.(check bool) "case-insensitive" true
    (Multi.find_policy "FIFO" <> None)

let test_binpack_prefers_fat_blocks () =
  let mk t arrival regs =
    { Multi.p_tenant = t; p_arrival = arrival; p_regs = regs; p_warps = 1 }
  in
  let module B = (val Multi.binpack : Multi.POLICY) in
  match B.pick ~free_regs:4096 ~last:(-1) [ mk 0 0 512; mk 1 1 2048 ] with
  | Some p -> Alcotest.(check int) "picks the fattest fit" 1 p.Multi.p_tenant
  | None -> Alcotest.fail "binpack refused a fitting candidate"

let test_empty_tenant_set_rejected () =
  Alcotest.check_raises "empty set"
    (Invalid_argument "Sim_multi.run: empty tenant set") (fun () ->
      ignore (Multi.run cfg []))

(* ---------------------------------------------------------------- *)
(* Combined-limit admission edges (Occupancy.usage / fits). *)

let demand regs shared =
  { Occ.d_regs_per_thread = regs; d_shared_bytes_per_block = shared }

let test_usage_mixed_binding_limits () =
  (* Kernel A is register-bound, kernel B is shared-memory-bound (as a
     spilling scheme's slots would make it): the combined admission
     must respect whichever limit binds first for each mix. *)
  let wpb = 8 in
  let a = Occ.block_usage cfg (demand 40 0) ~warps_per_block:wpb in
  let b = Occ.block_usage cfg (demand 1 16_384) ~warps_per_block:wpb in
  (* A alone: registers bind. *)
  let occ_a = Occ.of_demand cfg (demand 40 0) ~warps_per_block:wpb in
  Alcotest.(check bool) "A register-bound" true
    (occ_a.Occ.limiter = Occ.Registers);
  (* B alone: shared memory binds. *)
  let occ_b = Occ.of_demand cfg (demand 1 16_384) ~warps_per_block:wpb in
  Alcotest.(check bool) "B shared-bound" true
    (occ_b.Occ.limiter = Occ.Shared_memory);
  (* Greedy single-kernel admission through [fits] reaches exactly the
     isolated occupancy for both. *)
  let greedy u =
    let rec go used n =
      if Occ.fits cfg used u then go (Occ.add_usage used u) (n + 1) else n
    in
    go Occ.no_usage 0
  in
  Alcotest.(check int) "greedy A = occupancy A" occ_a.Occ.blocks_per_sm
    (greedy a);
  Alcotest.(check int) "greedy B = occupancy B" occ_b.Occ.blocks_per_sm
    (greedy b);
  (* Mixed: one B block consumes half the shared memory; As still fit
     until registers run out, and one more B fills the shared side. *)
  let used = Occ.add_usage Occ.no_usage b in
  Alcotest.(check bool) "A fits next to B" true (Occ.fits cfg used a);
  Alcotest.(check bool) "second B still fits" true (Occ.fits cfg used b);
  let used3 = Occ.add_usage (Occ.add_usage used b) b in
  Alcotest.(check bool) "third B exceeds shared memory" false
    (Occ.fits cfg used3 b)

let test_usage_zero_block_admission () =
  (* A block that alone exceeds the SM: compute raises, fits refuses
     even an empty SM — the two views agree on inadmissibility. *)
  let d = demand ((cfg.registers_per_sm / 32) + 1) 0 in
  Alcotest.(check bool) "fits refuses on an empty SM" false
    (Occ.fits cfg Occ.no_usage (Occ.block_usage cfg d ~warps_per_block:1));
  (match Occ.of_demand cfg d ~warps_per_block:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_demand accepted an impossible block");
  Alcotest.check_raises "block_usage rejects zero warps"
    (Invalid_argument "Occupancy.block_usage: no warps") (fun () ->
      ignore (Occ.block_usage cfg (demand 1 0) ~warps_per_block:0))

let prop_admitted_sets_within_limits =
  (* Any greedily-admitted mixed set stays within every SM limit. *)
  QCheck.Test.make ~name:"admitted sets never exceed the combined limits"
    ~count:(if fast_tests then 50 else 200)
    QCheck.(
      list_of_size (Gen.int_range 1 8)
        (triple (int_range 1 64) (int_range 0 24_576) (int_range 1 16)))
    (fun kernels ->
      let usages =
        List.map
          (fun (regs, shared, wpb) ->
            Occ.block_usage cfg (demand regs shared) ~warps_per_block:wpb)
          kernels
      in
      (* Round-robin admission until nothing fits. *)
      let used = ref Occ.no_usage in
      let admitted = ref 0 in
      let continue = ref true in
      while !continue do
        continue := false;
        List.iter
          (fun u ->
            if Occ.fits cfg !used u then begin
              used := Occ.add_usage !used u;
              incr admitted;
              continue := true
            end)
          usages
      done;
      let u = !used in
      u.Occ.u_registers <= cfg.registers_per_sm
      && u.Occ.u_shared_bytes <= cfg.shared_mem_bytes
      && u.Occ.u_warps <= cfg.max_warps
      && u.Occ.u_blocks <= cfg.max_blocks
      && u.Occ.u_blocks = !admitted)

(* ---------------------------------------------------------------- *)
(* Fairness index. *)

let test_jain_index () =
  let open Gpr_obs.Fair in
  (* No tenant issued anything: there is no allocation to rate, so the
     0.0 sentinel (outside Jain's [1/n, 1] range) marks the degenerate
     case instead of the old misleading "perfectly fair" 1.0. *)
  Alcotest.(check (float 1e-9)) "empty is degenerate" 0.0 (jain []);
  Alcotest.(check (float 1e-9)) "all-zero is degenerate" 0.0 (jain [ 0.0; 0.0 ]);
  Alcotest.(check bool) "degenerate sentinel" true (degenerate (jain []));
  Alcotest.(check bool) "proper values not degenerate" false
    (degenerate (jain [ 4.0; 1.0 ]));
  Alcotest.(check (float 1e-9)) "even split" 1.0 (jain [ 3.0; 3.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "monopoly" 0.25 (jain [ 1.0; 0.0; 0.0; 0.0 ]);
  Alcotest.(check (float 1e-9)) "textbook 4:1" 0.735294117647058854
    (jain [ 4.0; 1.0 ]);
  Alcotest.check_raises "negative share rejected"
    (Invalid_argument "Fair.jain: negative share") (fun () ->
      ignore (jain [ 1.0; -1.0 ]))

let () =
  Alcotest.run "multi"
    [
      ( "singleton",
        [
          Alcotest.test_case "registry pins (all backends x policies)" `Quick
            test_registry_singleton;
          QCheck_alcotest.to_alcotest prop_singleton_agrees;
        ] );
      ( "co-scheduling",
        [
          Alcotest.test_case "pair invariants (backends x policies)" `Quick
            test_pair_invariants;
          Alcotest.test_case "replay matches isolated" `Quick
            test_pair_replay_matches_isolated;
          Alcotest.test_case "policies admit same total" `Quick
            test_policies_admit_same_total;
          Alcotest.test_case "empty set rejected" `Quick
            test_empty_tenant_set_rejected;
        ] );
      ( "policies",
        [
          Alcotest.test_case "find_policy" `Quick test_find_policy;
          Alcotest.test_case "binpack prefers fat blocks" `Quick
            test_binpack_prefers_fat_blocks;
        ] );
      ( "admission",
        [
          Alcotest.test_case "mixed binding limits" `Quick
            test_usage_mixed_binding_limits;
          Alcotest.test_case "zero-block admission" `Quick
            test_usage_zero_block_admission;
          QCheck_alcotest.to_alcotest prop_admitted_sets_within_limits;
        ] );
      ("fairness", [ Alcotest.test_case "jain" `Quick test_jain_index ]);
    ]
