(* gpr_engine: domain pool, content fingerprints, on-disk store.

   Pool properties are QCheck-driven: deterministic-order map_list
   against List.map at random parallelism, exception propagation, and
   a jobs ≫ domains stress.  Store tests cover round-trips plus the
   silent-recompute paths (missing, truncated, corrupt, wrong
   version).  Fingerprint tests pin the sensitivity contract: any edit
   to kernel, launch, params, data, config or threshold changes the
   key, and rebuilding the same content reproduces it. *)

module Pool = Gpr_engine.Pool
module Fp = Gpr_engine.Fingerprint
module Store = Gpr_engine.Store

(* ---------------------------------------------------------------- *)
(* Pool *)

let qcheck_case ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name gen prop)

let pool_map_matches_serial =
  qcheck_case "map_list == List.map"
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
       let f x = (x * 31) lxor 17 in
       Pool.with_pool ~jobs (fun p -> Pool.map_list p f xs) = List.map f xs)

let pool_order_preserved =
  qcheck_case "ordering at jobs >> domains"
    QCheck.(int_range 2 5)
    (fun jobs ->
       (* 200 tasks on few domains: results must come back in submit
          order whatever the completion interleaving. *)
       let xs = List.init 200 Fun.id in
       Pool.with_pool ~jobs (fun p -> Pool.map_list p (fun x -> x * x) xs)
       = List.map (fun x -> x * x) xs)

exception Boom of int

let test_pool_exception () =
  let r =
    Pool.with_pool ~jobs:3 (fun p ->
        match
          Pool.map_list p
            (fun x -> if x = 7 then raise (Boom x) else x)
            [ 1; 3; 7; 9 ]
        with
        | _ -> `No_exn
        | exception Boom 7 -> `Boom)
  in
  Alcotest.(check bool) "exception re-raised in awaiting domain" true
    (r = `Boom)

let test_pool_exception_serial () =
  (* jobs = 1 runs inline but must still defer the exception to await. *)
  let r =
    Pool.with_pool ~jobs:1 (fun p ->
        match Pool.map_list p (fun _ -> failwith "boom") [ () ] with
        | _ -> `No_exn
        | exception Failure _ -> `Boom)
  in
  Alcotest.(check bool) "serial exception at await" true (r = `Boom)

let test_pool_futures () =
  Pool.with_pool ~jobs:4 (fun p ->
      let futs = List.init 50 (fun i -> Pool.submit p (fun () -> i + 1)) in
      (* Await out of submission order. *)
      let rev = List.rev_map Pool.await futs in
      Alcotest.(check (list int)) "futures independent of await order"
        (List.init 50 (fun i -> 50 - i)) rev)

let test_pool_empty_and_shutdown () =
  Alcotest.(check (list int)) "empty map" []
    (Pool.with_pool ~jobs:4 (fun p -> Pool.map_list p Fun.id []));
  let p = Pool.create ~jobs:3 in
  Alcotest.(check int) "jobs recorded" 3 (Pool.jobs p);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *)

let test_default_jobs () =
  Alcotest.(check bool) "positive" true (Pool.default_jobs () >= 1)

(* ---------------------------------------------------------------- *)
(* Fingerprint *)

let builder_kernel ?(name = "fp") value =
  let open Gpr_isa.Builder in
  let b = create ~name in
  let out = global_buffer b Gpr_isa.Types.S32 "out" in
  let tid = tid_x b in
  let v = iadd b ~$tid (ci value) in
  st b out ~$tid ~$v;
  finish b

let test_fp_kernel_sensitivity () =
  let k1 = builder_kernel 1 and k1' = builder_kernel 1 in
  let k2 = builder_kernel 2 in
  Alcotest.(check bool) "same content, same key" true
    (Fp.equal (Fp.kernel k1) (Fp.kernel k1'));
  Alcotest.(check bool) "edited constant changes key" false
    (Fp.equal (Fp.kernel k1) (Fp.kernel k2))

let test_fp_generated_kernels_distinct () =
  let fps =
    List.init 25 (fun i ->
        Fp.to_hex (Fp.kernel (Gpr_check.Gen.generate (i + 1)).kernel))
  in
  let distinct = List.sort_uniq compare fps in
  Alcotest.(check int) "25 generated kernels, 25 keys" 25
    (List.length distinct)

let test_fp_config_sensitivity () =
  let fermi = Gpr_arch.Config.fermi_gtx480 in
  Alcotest.(check bool) "same config" true
    (Fp.equal (Fp.config fermi) (Fp.config fermi));
  Alcotest.(check bool) "fermi <> volta" false
    (Fp.equal (Fp.config fermi) (Fp.config Gpr_arch.Config.volta_v100));
  Alcotest.(check bool) "one field edit" false
    (Fp.equal (Fp.config fermi)
       (Fp.config { fermi with register_banks = fermi.register_banks * 2 }))

let test_fp_threshold_and_launch () =
  Alcotest.(check bool) "thresholds differ" false
    (Fp.equal
       (Fp.threshold Gpr_quality.Quality.Perfect)
       (Fp.threshold Gpr_quality.Quality.High));
  let l = Gpr_isa.Types.launch_1d ~block:64 ~grid:4 in
  Alcotest.(check bool) "launch differs" false
    (Fp.equal (Fp.launch l)
       (Fp.launch (Gpr_isa.Types.launch_1d ~block:128 ~grid:4)));
  Alcotest.(check bool) "launch equal" true (Fp.equal (Fp.launch l) (Fp.launch l))

let test_fp_of_strings_unambiguous () =
  (* Length prefixing: ["ab";"c"] must not collide with ["a";"bc"]. *)
  Alcotest.(check bool) "no concat collision" false
    (Fp.equal (Fp.of_strings [ "ab"; "c" ]) (Fp.of_strings [ "a"; "bc" ]))

(* A tiny but complete workload; [value] is baked into the kernel body
   so two instances can share a name with different content. *)
let tiny_workload ?(name = "tiny") ?(value = 1.0) ?(fill = 0.0) () =
  let open Gpr_isa.Builder in
  let b = create ~name in
  let out = global_buffer b Gpr_isa.Types.F32 "out" in
  let tid = tid_x b in
  let v = var b Gpr_isa.Types.F32 "v" in
  assign b v (cf value);
  let v2 = fadd b ~$v (cf 0.25) in
  st b out ~$tid ~$v2;
  let kernel = finish b in
  {
    Gpr_workloads.Workload.name;
    group = 2;
    metric = Gpr_quality.Quality.M_deviation;
    kernel;
    launch = Gpr_isa.Types.launch_1d ~block:4 ~grid:1;
    params = [||];
    data = (fun () -> [ ("out", Gpr_exec.Exec.F_data (Array.make 4 fill)) ]);
    shared = [];
    extra_shared_bytes = 0;
    output = Gpr_workloads.Workload.Out_floats "out";
    paper_regs = 0;
  }

let test_fp_workload_sensitivity () =
  let base = tiny_workload () in
  let same = tiny_workload () in
  Alcotest.(check bool) "identical workloads share a key" true
    (Fp.equal (Fp.workload base) (Fp.workload same));
  let differs w = not (Fp.equal (Fp.workload base) (Fp.workload w)) in
  Alcotest.(check bool) "kernel edit" true
    (differs (tiny_workload ~value:2.0 ()));
  Alcotest.(check bool) "same name, different body" true
    (differs (tiny_workload ~name:"tiny" ~value:3.0 ()));
  Alcotest.(check bool) "input data edit" true
    (differs (tiny_workload ~fill:1.0 ()));
  Alcotest.(check bool) "launch edit" true
    (differs { base with launch = Gpr_isa.Types.launch_1d ~block:8 ~grid:1 });
  Alcotest.(check bool) "params edit" true
    (differs { base with params = [| Gpr_exec.Exec.P_int 42 |] });
  Alcotest.(check bool) "metric edit" true
    (differs { base with metric = Gpr_quality.Quality.M_binary })

(* ---------------------------------------------------------------- *)
(* Store *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gpr-store-test-%d-%d" (Unix.getpid ()) !n)

let entry_file dir =
  match
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".bin")
  with
  | [ f ] -> Filename.concat dir f
  | files ->
    Alcotest.failf "expected exactly one entry, found %d" (List.length files)

let test_store_roundtrip () =
  let s = Store.create ~dir:(fresh_dir ()) () in
  let key = Fp.of_strings [ "roundtrip" ] in
  let v = ([ 1; 2; 3 ], [| 1.5; -2.25 |], "hello") in
  Alcotest.(check bool) "cold miss" true (Store.find s ~kind:"t" ~key = None);
  Store.add s ~kind:"t" ~key v;
  Alcotest.(check bool) "hit after add" true
    (Store.find s ~kind:"t" ~key = Some v);
  Alcotest.(check bool) "kind namespaces keys" true
    (Store.find s ~kind:"other" ~key = None);
  Alcotest.(check int) "hits" 1 (Store.hits s);
  Alcotest.(check int) "misses" 2 (Store.misses s)

let test_store_memoize () =
  let s = Store.create ~dir:(fresh_dir ()) () in
  let key = Fp.of_strings [ "memo" ] in
  let calls = ref 0 in
  let f () = incr calls; 40 + 2 in
  Alcotest.(check int) "computed" 42 (Store.memoize (Some s) ~kind:"m" ~key f);
  Alcotest.(check int) "served from disk" 42
    (Store.memoize (Some s) ~kind:"m" ~key f);
  Alcotest.(check int) "one compute" 1 !calls;
  Alcotest.(check int) "no store, always computes" 42
    (Store.memoize None ~kind:"m" ~key f);
  Alcotest.(check int) "two computes" 2 !calls

let corrupt_with dir f =
  let file = entry_file dir in
  let content =
    In_channel.with_open_bin file In_channel.input_all
  in
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc (f content))

let test_store_truncated () =
  let dir = fresh_dir () in
  let s = Store.create ~dir () in
  let key = Fp.of_strings [ "trunc" ] in
  Store.add s ~kind:"t" ~key [ 1; 2; 3; 4; 5 ];
  corrupt_with dir (fun c -> String.sub c 0 (String.length c / 2));
  Alcotest.(check bool) "truncated entry is a miss" true
    (Store.find s ~kind:"t" ~key = None);
  (* memoize recomputes and repairs the entry *)
  Alcotest.(check (list int)) "recomputed" [ 9 ]
    (Store.memoize (Some s) ~kind:"t" ~key (fun () -> [ 9 ]));
  Alcotest.(check bool) "repaired" true
    (Store.find s ~kind:"t" ~key = Some [ 9 ])

let test_store_corrupt_bytes () =
  let dir = fresh_dir () in
  let s = Store.create ~dir () in
  let key = Fp.of_strings [ "corrupt" ] in
  Store.add s ~kind:"t" ~key [| 3.14; 2.71 |];
  corrupt_with dir (fun c ->
      let b = Bytes.of_string c in
      (* Smash the Marshal payload (past the two header lines). *)
      for i = String.length c - 8 to String.length c - 1 do
        Bytes.set b i '\xff'
      done;
      Bytes.to_string b);
  Alcotest.(check bool) "corrupt entry is a miss" true
    (Store.find s ~kind:"t" ~key = None)

let test_store_version_mismatch () =
  let dir = fresh_dir () in
  let s = Store.create ~dir () in
  let key = Fp.of_strings [ "version" ] in
  Store.add s ~kind:"t" ~key 123;
  corrupt_with dir (fun c ->
      (* Rewrite the version line, keeping the magic. *)
      match String.index_opt c '\n' with
      | None -> c
      | Some i ->
        let rest = String.sub c i (String.length c - i) in
        (match String.index_from_opt c (i + 1) '\n' with
         | None -> c
         | Some j ->
           String.sub c 0 (i + 1) ^ "written-by-older-library"
           ^ String.sub c j (String.length c - j))
        |> fun s' -> ignore rest; s');
  Alcotest.(check bool) "stale-version entry is a miss" true
    (Store.find s ~kind:"t" ~key = None)

let test_warm_stats_byte_identical () =
  (* A warm [Simulate.backend] hit must hand back *exactly* the stats
     the cold run produced, for every registered scheme — including
     spill, whose stats carry the spill counters and spill-port stall
     attribution.  Byte-level Marshal comparison catches any field the
     deserialised record could silently mis-assemble (the reason
     [Fingerprint.version] must move whenever [Sim.stats] changes
     shape). *)
  let w =
    match Gpr_workloads.Registry.by_name "hotspot" with
    | Some w -> w
    | None -> Alcotest.fail "hotspot workload missing"
  in
  let c = Gpr_core.Compress.analyze w in
  let threshold = Gpr_quality.Quality.High in
  let s = Store.create ~dir:(fresh_dir ()) () in
  Gpr_core.Simulate.set_store (Some s);
  Fun.protect
    ~finally:(fun () ->
      Gpr_core.Simulate.set_store None;
      Gpr_core.Simulate.clear_cache ())
    (fun () ->
      List.iter
        (fun b ->
          let id = Gpr_backend.Backend.id b in
          Gpr_core.Simulate.clear_cache ();
          let cold = Gpr_core.Simulate.backend b c threshold in
          (* Drop the in-memory memo so the warm read comes off disk. *)
          Gpr_core.Simulate.clear_cache ();
          let hits0 = Store.hits s and misses0 = Store.misses s in
          let warm = Gpr_core.Simulate.backend b c threshold in
          Alcotest.(check bool) (id ^ ": warm run hit the store") true
            (Store.hits s > hits0);
          Alcotest.(check int) (id ^ ": warm run missed nothing") misses0
            (Store.misses s);
          Alcotest.(check string) (id ^ ": stats byte-identical")
            (Marshal.to_string cold [])
            (Marshal.to_string warm []);
          (* Spot-check that what round-tripped is also well-formed. *)
          Alcotest.(check int) (id ^ ": slot identity survives the store")
            (warm.Gpr_sim.Sim.cycles
             * Gpr_arch.Config.fermi_gtx480.warp_schedulers)
            (Gpr_obs.Stall.total_slots (Gpr_sim.Sim.breakdown warm)))
        Gpr_backend.Registry.all)

let test_store_shared_across_domains () =
  (* One store, many domains: counters stay consistent and every
     memoize returns the right value. *)
  let s = Store.create ~dir:(fresh_dir ()) () in
  let results =
    Pool.with_pool ~jobs:4 (fun p ->
        Pool.map_list p
          (fun i ->
             let key = Fp.of_strings [ "shard"; string_of_int (i mod 5) ] in
             Store.memoize (Some s) ~kind:"d" ~key (fun () -> i mod 5))
          (List.init 40 Fun.id))
  in
  Alcotest.(check (list int)) "all values correct"
    (List.init 40 (fun i -> i mod 5))
    results;
  Alcotest.(check int) "every lookup counted" 40
    (Store.hits s + Store.misses s)

(* ---------------- bounded stores ---------------- *)

let key_file dir ~kind ~key =
  Filename.concat dir (kind ^ "-" ^ Fp.to_hex key ^ ".bin")

let backdate dir ~kind ~key seconds_ago =
  let t = Unix.gettimeofday () -. seconds_ago in
  Unix.utimes (key_file dir ~kind ~key) t t

let test_store_entry_cap_evicts_oldest () =
  let dir = fresh_dir () in
  let s = Store.create ~max_entries:2 ~dir () in
  let k n = Fp.of_strings [ "cap"; n ] in
  Store.add s ~kind:"t" ~key:(k "a") "a";
  Store.add s ~kind:"t" ~key:(k "b") "b";
  (* Deterministic recency regardless of filesystem timestamp
     granularity: a is clearly the least recently used. *)
  backdate dir ~kind:"t" ~key:(k "a") 100.0;
  backdate dir ~kind:"t" ~key:(k "b") 50.0;
  Store.add s ~kind:"t" ~key:(k "c") "c";
  Alcotest.(check bool) "oldest evicted" true
    (Store.find s ~kind:"t" ~key:(k "a") = None);
  Alcotest.(check bool) "second survives" true
    (Store.find s ~kind:"t" ~key:(k "b") = Some "b");
  Alcotest.(check bool) "newest survives" true
    (Store.find s ~kind:"t" ~key:(k "c") = Some "c");
  Alcotest.(check int) "one eviction" 1 (Store.evictions s)

let test_store_hit_refreshes_recency () =
  let dir = fresh_dir () in
  let s = Store.create ~max_entries:2 ~dir () in
  let k n = Fp.of_strings [ "lru"; n ] in
  Store.add s ~kind:"t" ~key:(k "a") 1;
  Store.add s ~kind:"t" ~key:(k "b") 2;
  backdate dir ~kind:"t" ~key:(k "a") 100.0;
  backdate dir ~kind:"t" ~key:(k "b") 50.0;
  (* Touching a makes b the LRU entry, so the next add evicts b. *)
  Alcotest.(check bool) "a hits" true
    (Store.find s ~kind:"t" ~key:(k "a") = Some 1);
  Store.add s ~kind:"t" ~key:(k "c") 3;
  Alcotest.(check bool) "recently used survives" true
    (Store.find s ~kind:"t" ~key:(k "a") = Some 1);
  Alcotest.(check bool) "stale entry evicted" true
    (Store.find s ~kind:"t" ~key:(k "b") = None);
  Alcotest.(check bool) "newest survives" true
    (Store.find s ~kind:"t" ~key:(k "c") = Some 3)

let test_store_byte_cap_keeps_newest () =
  let dir = fresh_dir () in
  (* Cap far below one entry's size: the newest entry must still be
     served (the cap never evicts what was just written). *)
  let s = Store.create ~max_bytes:1 ~dir () in
  let k n = Fp.of_strings [ "bytes"; n ] in
  let big = String.make 4096 'x' in
  Store.add s ~kind:"t" ~key:(k "a") big;
  Alcotest.(check bool) "lone oversized entry survives" true
    (Store.find s ~kind:"t" ~key:(k "a") = Some big);
  backdate dir ~kind:"t" ~key:(k "a") 100.0;
  Store.add s ~kind:"t" ~key:(k "b") big;
  Alcotest.(check bool) "older entry evicted for bytes" true
    (Store.find s ~kind:"t" ~key:(k "a") = None);
  Alcotest.(check bool) "newest survives byte cap" true
    (Store.find s ~kind:"t" ~key:(k "b") = Some big);
  Alcotest.(check int) "one eviction" 1 (Store.evictions s)

let test_store_unbounded_never_evicts () =
  let s = Store.create ~dir:(fresh_dir ()) () in
  let k n = Fp.of_strings [ "unb"; string_of_int n ] in
  for i = 1 to 20 do Store.add s ~kind:"t" ~key:(k i) i done;
  for i = 1 to 20 do
    Alcotest.(check bool) "entry retained" true
      (Store.find s ~kind:"t" ~key:(k i) = Some i)
  done;
  Alcotest.(check int) "no evictions" 0 (Store.evictions s)

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          pool_map_matches_serial;
          pool_order_preserved;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
          Alcotest.test_case "serial exception" `Quick
            test_pool_exception_serial;
          Alcotest.test_case "futures" `Quick test_pool_futures;
          Alcotest.test_case "empty + shutdown" `Quick
            test_pool_empty_and_shutdown;
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "kernel sensitivity" `Quick
            test_fp_kernel_sensitivity;
          Alcotest.test_case "generated kernels distinct" `Quick
            test_fp_generated_kernels_distinct;
          Alcotest.test_case "config sensitivity" `Quick
            test_fp_config_sensitivity;
          Alcotest.test_case "threshold + launch" `Quick
            test_fp_threshold_and_launch;
          Alcotest.test_case "no concat ambiguity" `Quick
            test_fp_of_strings_unambiguous;
          Alcotest.test_case "workload sensitivity" `Quick
            test_fp_workload_sensitivity;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "memoize" `Quick test_store_memoize;
          Alcotest.test_case "truncated file" `Quick test_store_truncated;
          Alcotest.test_case "corrupt bytes" `Quick test_store_corrupt_bytes;
          Alcotest.test_case "version mismatch" `Quick
            test_store_version_mismatch;
          Alcotest.test_case "warm stats byte-identical" `Quick
            test_warm_stats_byte_identical;
          Alcotest.test_case "shared across domains" `Quick
            test_store_shared_across_domains;
          Alcotest.test_case "entry cap evicts oldest" `Quick
            test_store_entry_cap_evicts_oldest;
          Alcotest.test_case "hit refreshes recency" `Quick
            test_store_hit_refreshes_recency;
          Alcotest.test_case "byte cap keeps newest" `Quick
            test_store_byte_cap_keeps_newest;
          Alcotest.test_case "unbounded never evicts" `Quick
            test_store_unbounded_never_evicts;
        ] );
    ]
