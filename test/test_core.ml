(* Integration tests over the full pipeline (Compress + Simulate) on one
   cheap kernel, plus the Sec. 6.4 / Sec. 7 area model against the
   paper's published constants. *)

module C = Gpr_core.Compress
module S = Gpr_core.Simulate
module Q = Gpr_quality.Quality
module Area = Gpr_area.Area

let hotspot () = Option.get (Gpr_workloads.Registry.by_name "Hotspot")

let test_compress_pressure_ordering () =
  let c = C.analyze (hotspot ()) in
  let p (a : Gpr_alloc.Alloc.t) = a.pressure in
  (* Both frameworks can only reduce pressure, and combining them is at
     least as good as either alone. *)
  Alcotest.(check bool) "int <= orig" true (p c.int_only <= p c.baseline);
  Alcotest.(check bool) "float(perfect) <= orig" true
    (p c.perfect.alloc_float_only <= p c.baseline);
  Alcotest.(check bool) "float(high) <= float(perfect)" true
    (p c.high.alloc_float_only <= p c.perfect.alloc_float_only);
  Alcotest.(check bool) "both(perfect) <= float(perfect)" true
    (p c.perfect.alloc_both <= p c.perfect.alloc_float_only);
  Alcotest.(check bool) "both(perfect) <= int" true
    (p c.perfect.alloc_both <= p c.int_only);
  Alcotest.(check bool) "both(high) <= both(perfect)" true
    (p c.high.alloc_both <= p c.perfect.alloc_both)

let test_compress_quality_met () =
  let c = C.analyze (hotspot ()) in
  Alcotest.(check bool) "perfect met" true
    (Q.meets c.perfect.achieved_score Q.Perfect);
  Alcotest.(check bool) "high met" true (Q.meets c.high.achieved_score Q.High)

let test_compress_occupancy_grows () =
  let c = C.analyze (hotspot ()) in
  let blocks a = (C.occupancy c a).Gpr_arch.Occupancy.blocks_per_sm in
  Alcotest.(check bool) "compression never hurts occupancy" true
    (blocks c.perfect.alloc_both >= blocks c.baseline)

let test_compress_cache () =
  C.clear_cache ();
  let t0 = Unix.gettimeofday () in
  let _ = C.analyze (hotspot ()) in
  let cold = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let _ = C.analyze (hotspot ()) in
  let warm = Unix.gettimeofday () -. t1 in
  Alcotest.(check bool) "memoised" true (warm < cold /. 10.0)

let test_simulate_consistency () =
  let c = C.analyze (hotspot ()) in
  let b = S.baseline c in
  let p = S.proposed c Q.High in
  let a = S.artificial c Q.High in
  Alcotest.(check bool) "positive cycles" true (b.cycles > 0 && p.cycles > 0);
  Alcotest.(check bool) "ipc positive" true (b.gpu_ipc > 0.0);
  (* The artificial-occupancy control bounds the proposed design from
     above (Table 1's argument), modulo small simulation noise. *)
  Alcotest.(check bool) "proposed <= artificial * 1.05" true
    (p.gpu_ipc <= a.gpu_ipc *. 1.05);
  (* Proposed beats baseline for this register-limited kernel. *)
  Alcotest.(check bool) "proposed > baseline" true (p.gpu_ipc > b.gpu_ipc)

let test_width_fn () =
  let c = C.analyze (hotspot ()) in
  let wf =
    C.width_fn ~narrow_ints:true
      ~narrow_floats:(Some c.high.assignment) ~width:c.width
  in
  (* Predicates and unknown registers stay at 32 bits. *)
  Alcotest.(check int) "pred 32" 32
    (wf { Gpr_isa.Types.id = 0; ty = Pred; name = "p" });
  (* Every width is in [1, 32]. *)
  for v = 0 to 40 do
    let w = wf { Gpr_isa.Types.id = v; ty = S32; name = "x" } in
    Alcotest.(check bool) "bounded" true (w >= 1 && w <= 32)
  done

(* A minimal workload whose kernel body bakes in [value], so two
   instances can share a name while computing different things. *)
let tiny_workload ?(name = "tiny") ~value () =
  let open Gpr_isa.Builder in
  let b = create ~name in
  let out = global_buffer b Gpr_isa.Types.F32 "out" in
  let tid = tid_x b in
  let v = var b Gpr_isa.Types.F32 "v" in
  assign b v (cf value);
  let v2 = fadd b ~$v (cf 0.25) in
  st b out ~$tid ~$v2;
  let kernel = finish b in
  {
    Gpr_workloads.Workload.name;
    group = 2;
    metric = Q.M_deviation;
    kernel;
    launch = Gpr_isa.Types.launch_1d ~block:4 ~grid:1;
    params = [||];
    data = (fun () -> [ ("out", Gpr_exec.Exec.F_data (Array.make 4 0.0)) ]);
    shared = [];
    extra_shared_bytes = 0;
    output = Gpr_workloads.Workload.Out_floats "out";
    paper_regs = 0;
  }

(* Regression: the memo table used to be keyed by [w.name], so a second
   workload reusing a name was served the first one's analysis.  Keys
   are now content fingerprints. *)
let test_compress_no_name_staleness () =
  C.clear_cache ();
  let w1 = tiny_workload ~name:"stale" ~value:1.0 () in
  let w2 = tiny_workload ~name:"stale" ~value:2.0 () in
  let c1 = C.analyze w1 in
  let c2 = C.analyze w2 in
  Alcotest.(check bool) "distinct memo keys" false
    (Gpr_engine.Fingerprint.equal c1.C.fingerprint c2.C.fingerprint);
  (* The second analysis must reflect the second kernel body
     (out[i] = 2.25), not the cached first one (out[i] = 1.25). *)
  Alcotest.(check (float 1e-6)) "w1 reference" 1.25 c1.C.reference.(0);
  Alcotest.(check (float 1e-6)) "w2 reference" 2.25 c2.C.reference.(0)

(* Cold compute, drop the in-memory memo, re-analyze: the result must
   come back from the on-disk store, identical to the cold one. *)
let test_compress_store_roundtrip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gpr-core-store-%d" (Unix.getpid ()))
  in
  let store = Gpr_engine.Store.create ~dir () in
  C.set_store (Some store);
  Fun.protect
    ~finally:(fun () -> C.set_store None)
    (fun () ->
       C.clear_cache ();
       let w = tiny_workload ~name:"persist" ~value:3.0 () in
       let cold = C.analyze w in
       C.clear_cache ();
       let warm = C.analyze w in
       Alcotest.(check bool) "served from disk" true
         (Gpr_engine.Store.hits store > 0);
       Alcotest.(check int) "same pressure"
         cold.C.perfect.C.alloc_both.pressure
         warm.C.perfect.C.alloc_both.pressure;
       Alcotest.(check (float 0.0)) "same reference" cold.C.reference.(0)
         warm.C.reference.(0))

(* ---------------------------------------------------------------- *)
(* Area model vs the paper's published constants (Sec. 6.4 / Sec. 7) *)

let test_area_fermi_structures () =
  let b = Area.fermi in
  Alcotest.(check int) "TVE transistors" 1560 b.Area.tve_transistors;
  Alcotest.(check int) "value extractors (16 banks)" 798_720
    b.Area.value_extractors;
  Alcotest.(check int) "value converters" 249_600 b.Area.value_converters;
  Alcotest.(check int) "indirection tables" 98_304 b.Area.indirection_tables;
  Alcotest.(check int) "value truncators" 518_016 b.Area.value_truncators;
  Alcotest.(check int) "CU extensions" 108_384 b.Area.cu_extensions

let test_area_fermi_totals () =
  let b = Area.fermi in
  (* Paper: ~1.8 M per SM, ~27 M chip-wide, < 1 % of 3.1 B. *)
  Alcotest.(check bool) "~1.8M per SM" true
    (b.Area.total_per_sm > 1_700_000 && b.Area.total_per_sm < 1_900_000);
  Alcotest.(check int) "chip = 15 SMs" (b.Area.total_per_sm * 15)
    b.Area.total_chip;
  Alcotest.(check bool) "under 1%" true (b.Area.fraction_of_chip < 0.01)

let test_area_volta_totals () =
  let v = Area.volta in
  (* Paper: ~1.4 M per processing block, 5.6 M per SM, ~470 M total,
     just over 2 % of 21 B. *)
  Alcotest.(check bool) "~5.6M per SM" true
    (v.Area.total_per_sm > 5_200_000 && v.Area.total_per_sm < 6_000_000);
  Alcotest.(check bool) "~470M chip" true
    (v.Area.total_chip > 420_000_000 && v.Area.total_chip < 500_000_000);
  Alcotest.(check bool) "just over 2%" true
    (v.Area.fraction_of_chip > 0.015 && v.Area.fraction_of_chip < 0.03)

let test_power_summary () =
  let p = Area.power Area.fermi in
  Alcotest.(check (float 1e-12)) "static tracks area"
    Area.fermi.Area.fraction_of_chip p.Area.static_overhead_fraction;
  Alcotest.(check (float 0.0)) "double fetch 2x" 2.0
    p.Area.double_fetch_read_energy_factor;
  Alcotest.(check (float 0.0)) "doubled RF 2x" 2.0
    p.Area.doubled_regfile_read_energy_factor

let () =
  Alcotest.run "core"
    [
      ( "compress",
        [
          Alcotest.test_case "pressure ordering" `Slow
            test_compress_pressure_ordering;
          Alcotest.test_case "quality met" `Slow test_compress_quality_met;
          Alcotest.test_case "occupancy grows" `Slow test_compress_occupancy_grows;
          Alcotest.test_case "memoised" `Slow test_compress_cache;
          Alcotest.test_case "width fn" `Slow test_width_fn;
          Alcotest.test_case "no name staleness" `Quick
            test_compress_no_name_staleness;
          Alcotest.test_case "store roundtrip" `Quick
            test_compress_store_roundtrip;
        ] );
      ( "simulate",
        [ Alcotest.test_case "consistency" `Slow test_simulate_consistency ] );
      ( "area",
        [
          Alcotest.test_case "fermi structures" `Quick test_area_fermi_structures;
          Alcotest.test_case "fermi totals" `Quick test_area_fermi_totals;
          Alcotest.test_case "volta totals" `Quick test_area_volta_totals;
          Alcotest.test_case "power" `Quick test_power_summary;
        ] );
    ]
