(* gpr_backend: registry lookups, scheme analyses on a registry kernel
   (pressure/spill invariants, sim-mode mapping), fingerprint
   disjointness, and the memoisation regression: two schemes must never
   share an on-disk cache entry for the same workload, even when their
   computed stats happen to coincide. *)

module B = Gpr_backend.Backend
module Reg = Gpr_backend.Registry
module Fp = Gpr_engine.Fingerprint
module Store = Gpr_engine.Store
module Alloc = Gpr_alloc.Alloc
module L = Gpr_analysis.Liveness
module Sim = Gpr_sim.Sim
module Q = Gpr_quality.Quality
module Compress = Gpr_core.Compress
module Simulate = Gpr_core.Simulate

(* ---------------------------------------------------------------- *)
(* Registry *)

let test_registry () =
  Alcotest.(check (list string))
    "registered schemes"
    [ "baseline"; "slice"; "rrcd"; "spill" ]
    Reg.names;
  Alcotest.(check bool) "case-insensitive find" true (Reg.find "SPILL" <> None);
  Alcotest.(check bool) "unknown is None" true (Reg.find "bogus" = None);
  Alcotest.(check bool) "find_exn raises" true
    (match Reg.find_exn "bogus" with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_scheme_fingerprints_distinct () =
  let fps = List.map (fun b -> Fp.to_hex (B.fingerprint b)) Reg.all in
  Alcotest.(check int) "one key per scheme"
    (List.length Reg.all)
    (List.length (List.sort_uniq compare fps))

(* ---------------------------------------------------------------- *)
(* Scheme analyses on a registry kernel *)

let hotspot = Option.get (Gpr_workloads.Registry.by_name "Hotspot")

let analyze name =
  let b = Reg.find_exn name in
  let module S = (val b : B.Scheme) in
  let width =
    Gpr_analysis.Width.analyze hotspot.kernel ~launch:hotspot.launch
  in
  (b, S.analyze ~kernel:hotspot.kernel ~width ~precision:None)

let test_baseline_scheme () =
  let _, res = analyze "baseline" in
  let base = Alloc.baseline hotspot.kernel in
  Alcotest.(check int) "baseline pressure" base.Alloc.pressure
    res.B.alloc.Alloc.pressure;
  Alcotest.(check int) "no spill slots" 0 res.B.spill_slots;
  Alcotest.(check int) "no spilled registers" 0 (Hashtbl.length res.B.spilled)

let test_slice_scheme () =
  let _, res = analyze "slice" in
  let base = Alloc.baseline hotspot.kernel in
  Alcotest.(check bool) "narrow ints shrink pressure" true
    (res.B.alloc.Alloc.pressure <= base.Alloc.pressure);
  Alcotest.(check int) "register-only scheme" 0 res.B.spill_slots

let test_spill_scheme () =
  let b, res = analyze "spill" in
  let base = Alloc.baseline hotspot.kernel in
  Alcotest.(check bool) "spilling shrinks pressure" true
    (res.B.alloc.Alloc.pressure < base.Alloc.pressure);
  let n = Hashtbl.length res.B.spilled in
  Alcotest.(check bool) "spilled 1..8 registers" true (n >= 1 && n <= 8);
  Alcotest.(check bool) "slots cover spills, within cap" true
    (res.B.spill_slots >= 1 && res.B.spill_slots <= n);
  Alcotest.(check bool) "spill footprint within 32 B/thread" true
    (B.spill_bytes_per_thread res <= 32);
  (* Every live range is resident XOR spilled. *)
  let live = L.compute hotspot.kernel in
  List.iter
    (fun (v, _, _) ->
      let placed = Alloc.lookup res.B.alloc v <> None in
      let spilled = Hashtbl.mem res.B.spilled v in
      Alcotest.(check bool)
        (Printf.sprintf "%%%d resident xor spilled" v)
        true
        (placed <> spilled))
    (L.intervals live);
  (* Specials are never spilled. *)
  Gpr_isa.Types.(
    List.iter
      (fun (v, _) ->
        Alcotest.(check bool) "special not spilled" false
          (Hashtbl.mem res.B.spilled v))
      hotspot.kernel.k_specials);
  match B.sim_mode b res with
  | Sim.Spill { latency; spilled } ->
    Alcotest.(check bool) "spill latency positive" true (latency > 0);
    Alcotest.(check int) "sim sees the spill set" n (Hashtbl.length spilled)
  | _ -> Alcotest.fail "spill scheme must simulate in Spill mode"

let test_sim_mode_mapping () =
  let mode name =
    let b, res = analyze name in
    B.sim_mode b res
  in
  (match mode "baseline" with
   | Sim.Baseline -> ()
   | _ -> Alcotest.fail "baseline scheme must simulate in Baseline mode");
  match mode "slice" with
  | Sim.Proposed _ -> ()
  | _ -> Alcotest.fail "slice scheme must simulate in Proposed mode"

(* ---------------------------------------------------------------- *)
(* Memoisation: scheme id+version keeps cache entries disjoint *)

let tiny_workload () =
  let open Gpr_isa.Builder in
  let b = create ~name:"tiny-backend" in
  let out = global_buffer b Gpr_isa.Types.F32 "out" in
  let tid = tid_x b in
  let v = var b Gpr_isa.Types.F32 "v" in
  assign b v (cf 1.0);
  let v2 = fadd b ~$v (cf 0.25) in
  st b out ~$tid ~$v2;
  let kernel = finish b in
  {
    Gpr_workloads.Workload.name = "tiny-backend";
    group = 2;
    metric = Gpr_quality.Quality.M_deviation;
    kernel;
    launch = Gpr_isa.Types.launch_1d ~block:4 ~grid:1;
    params = [||];
    data = (fun () -> [ ("out", Gpr_exec.Exec.F_data (Array.make 4 0.0)) ]);
    shared = [];
    extra_shared_bytes = 0;
    output = Gpr_workloads.Workload.Out_floats "out";
    paper_regs = 0;
  }

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gpr-backend-test-%d-%d" (Unix.getpid ()) !n)

let test_backends_never_share_cache_entries () =
  let s = Store.create ~dir:(fresh_dir ()) () in
  Simulate.set_store (Some s);
  Fun.protect
    ~finally:(fun () ->
      Simulate.set_store None;
      Simulate.clear_cache ())
    (fun () ->
      let c = Compress.analyze (tiny_workload ()) in
      let b1 = Reg.find_exn "baseline" and b2 = Reg.find_exn "spill" in
      let st1 = Simulate.backend b1 c Q.High in
      Alcotest.(check int) "cold run misses" 1 (Store.misses s);
      (* The second scheme computes identical stats on this kernel (it
         spills nothing), but it must still miss: its key carries its
         own id+version. *)
      let st2 = Simulate.backend b2 c Q.High in
      Alcotest.(check int) "second scheme does not hit first entry" 2
        (Store.misses s);
      Alcotest.(check int) "no cross-scheme hit" 0 (Store.hits s);
      Alcotest.(check bool) "stats coincide on a spill-free kernel" true
        (st1 = st2);
      (* Warm re-runs hit each scheme's own entry. *)
      Simulate.clear_cache ();
      let st1' = Simulate.backend b1 c Q.High in
      Simulate.clear_cache ();
      let st2' = Simulate.backend b2 c Q.High in
      Alcotest.(check int) "per-scheme warm hits" 2 (Store.hits s);
      Alcotest.(check bool) "warm results identical" true
        (st1 = st1' && st2 = st2'))

let test_version_bump_changes_key () =
  (* The scheme fingerprint is (id, version): bumping the version must
     move the scheme to a fresh cache key. *)
  Alcotest.(check bool) "version participates in key" false
    (Fp.equal (Fp.scheme ~id:"x" ~version:1) (Fp.scheme ~id:"x" ~version:2));
  Alcotest.(check bool) "id participates in key" false
    (Fp.equal (Fp.scheme ~id:"x" ~version:1) (Fp.scheme ~id:"y" ~version:1))

let () =
  Alcotest.run "backend"
    [
      ( "registry",
        [
          Alcotest.test_case "names + lookup" `Quick test_registry;
          Alcotest.test_case "fingerprints distinct" `Quick
            test_scheme_fingerprints_distinct;
        ] );
      ( "schemes",
        [
          Alcotest.test_case "baseline" `Quick test_baseline_scheme;
          Alcotest.test_case "slice" `Quick test_slice_scheme;
          Alcotest.test_case "spill" `Quick test_spill_scheme;
          Alcotest.test_case "sim-mode mapping" `Quick test_sim_mode_mapping;
        ] );
      ( "memoisation",
        [
          Alcotest.test_case "schemes never share cache entries" `Quick
            test_backends_never_share_cache_entries;
          Alcotest.test_case "version bump changes key" `Quick
            test_version_bump_changes_key;
        ] );
    ]
