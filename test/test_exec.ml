(* Functional-executor tests: arithmetic semantics vs reference
   implementations, SIMT divergence and reconvergence, barriers with
   shared memory, traces, and the quantisation hook. *)

open Gpr_isa
open Gpr_isa.Types
module E = Gpr_exec.Exec
module T = Gpr_exec.Trace

let run_kernel kernel ~launch ~params ~data ?(shared = []) ?(config = E.default_config) () =
  let bindings = E.bindings_for kernel ~data ~shared () in
  E.run kernel ~launch ~params ~bindings config

(* ---------------------------------------------------------------- *)

let test_saxpy () =
  let b = Builder.create ~name:"saxpy" in
  let open Builder in
  let n = 256 in
  let x = global_buffer b F32 "x" in
  let y = global_buffer b F32 "y" in
  let a = param_f32 b "a" in
  let i = global_thread_id_x b in
  let xi = ld b x ~$i in
  let yi = ld b y ~$i in
  st b y ~$i ~$(ffma b ~$a ~$xi ~$yi);
  let kernel = finish b in
  let xs = Array.init n (fun i -> float_of_int i /. 8.0) in
  let ys = Array.init n (fun i -> float_of_int (n - i)) in
  let expect = Array.mapi (fun i x -> (2.5 *. x) +. ys.(i)) xs in
  let ydata = Array.copy ys in
  let _ =
    run_kernel kernel ~launch:(launch_1d ~block:64 ~grid:4)
      ~params:[| E.P_float 2.5 |]
      ~data:[ ("x", E.F_data xs); ("y", E.F_data ydata) ] ()
  in
  Array.iteri
    (fun i e ->
       Alcotest.(check (float 1e-4)) (Printf.sprintf "y[%d]" i) e ydata.(i))
    expect

let test_integer_semantics () =
  (* Check S32 wrap-around, division, shift semantics against OCaml. *)
  let b = Builder.create ~name:"ints" in
  let open Builder in
  let inp = global_buffer b S32 "inp" in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  let v = ld b inp ~$i in
  let r0 = imul b ~$v ~$v in                       (* may wrap *)
  let r1 = idiv b ~$v (ci 7) in
  let r2 = irem b ~$v (ci 7) in
  let r3 = ishr b ~$v (ci 2) in
  let r4 = iand b ~$v (ci 0xff) in
  let base = imul b ~$i (ci 5) in
  st b out ~$base ~$r0;
  st b out ~$(iadd b ~$base (ci 1)) ~$r1;
  st b out ~$(iadd b ~$base (ci 2)) ~$r2;
  st b out ~$(iadd b ~$base (ci 3)) ~$r3;
  st b out ~$(iadd b ~$base (ci 4)) ~$r4;
  let kernel = finish b in
  let values = [| 0; 1; -1; 7; -7; 123456; -123456; 0x7fffffff; -0x80000000;
                  65535; -65536; 42; 99; -100; 3; 2; 1; 0; 5; -5; 10; -10;
                  1000; -1000; 77; -77; 31; -31; 64; -64; 12345; -54321 |] in
  let outd = Array.make (32 * 5) 0 in
  let _ =
    run_kernel kernel ~launch:(launch_1d ~block:32 ~grid:1) ~params:[||]
      ~data:[ ("inp", E.I_data (Array.copy values)); ("out", E.I_data outd) ] ()
  in
  let wrap x =
    let y = x land 0xffff_ffff in
    if y >= 0x8000_0000 then y - 0x1_0000_0000 else y
  in
  Array.iteri
    (fun i v ->
       Alcotest.(check int) "mul wrap" (wrap (v * v)) outd.(i * 5);
       Alcotest.(check int) "div" (v / 7) outd.((i * 5) + 1);
       Alcotest.(check int) "rem" (v mod 7) outd.((i * 5) + 2);
       Alcotest.(check int) "shr" (v asr 2) outd.((i * 5) + 3);
       Alcotest.(check int) "and" (wrap (v land 0xff)) outd.((i * 5) + 4))
    values

let test_divergence_reconvergence () =
  (* Threads branch by parity; both sides write; afterwards all threads
     write a common value — checks IPDOM reconvergence executes both
     paths with the right masks. *)
  let b = Builder.create ~name:"diverge" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let post = global_buffer b S32 "post" in
  let i = global_thread_id_x b in
  let even = ieq b ~$(iand b ~$i (ci 1)) (ci 0) in
  if_ b even
    (fun () -> st b out ~$i (ci 100))
    (fun () -> st b out ~$i (ci 200));
  st b post ~$i ~$(iadd b ~$i (ci 1000));
  let kernel = finish b in
  let n = 64 in
  let outd = Array.make n 0 and postd = Array.make n 0 in
  let _ =
    run_kernel kernel ~launch:(launch_1d ~block:n ~grid:1) ~params:[||]
      ~data:[ ("out", E.I_data outd); ("post", E.I_data postd) ] ()
  in
  for i = 0 to n - 1 do
    Alcotest.(check int) "branch value" (if i land 1 = 0 then 100 else 200)
      outd.(i);
    Alcotest.(check int) "post-reconvergence" (i + 1000) postd.(i)
  done

let test_loop_trip_counts () =
  (* Data-dependent loop: thread i iterates i times. *)
  let b = Builder.create ~name:"trips" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  let acc = var b S32 "acc" in
  assign b acc (ci 0);
  for_ b ~lo:(ci 0) ~hi:~$i (fun _ ->
      assign b acc ~$(iadd b ~$acc (ci 3)));
  st b out ~$i ~$acc;
  let kernel = finish b in
  let n = 96 in
  let outd = Array.make n (-1) in
  let _ =
    run_kernel kernel ~launch:(launch_1d ~block:32 ~grid:3) ~params:[||]
      ~data:[ ("out", E.I_data outd) ] ()
  in
  for i = 0 to n - 1 do
    Alcotest.(check int) (Printf.sprintf "acc[%d]" i) (3 * i) outd.(i)
  done

let test_early_ret_guard () =
  let b = Builder.create ~name:"guard" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  if_then b (ige b ~$i (ci 10)) (fun () -> ret b);
  st b out ~$i (ci 7);
  let kernel = finish b in
  let outd = Array.make 10 0 in
  let _ =
    run_kernel kernel ~launch:(launch_1d ~block:32 ~grid:1) ~params:[||]
      ~data:[ ("out", E.I_data outd) ] ()
  in
  Array.iter (fun v -> Alcotest.(check int) "guarded" 7 v) outd

let test_shared_memory_barrier () =
  (* Block-wide reversal through shared memory: requires the barrier to
     order producer and consumer warps. *)
  let b = Builder.create ~name:"reverse" in
  let open Builder in
  let inp = global_buffer b S32 "inp" in
  let out = global_buffer b S32 "out" in
  let tile = shared_buffer b S32 "tile" in
  let t = tid_x b in
  let blk = ctaid_x b in
  let base = imul b ~$blk (ci 128) in
  let g = iadd b ~$base ~$t in
  st b tile ~$t ~$(ld b inp ~$g);
  bar b;
  let rev = isub b (ci 127) ~$t in
  st b out ~$g ~$(ld b tile ~$rev);
  let kernel = finish b in
  let n = 256 in
  let inpd = Array.init n (fun i -> i * 11) in
  let outd = Array.make n 0 in
  let _ =
    run_kernel kernel ~launch:(launch_1d ~block:128 ~grid:2) ~params:[||]
      ~data:[ ("inp", E.I_data inpd); ("out", E.I_data outd) ]
      ~shared:[ ("tile", 128) ] ()
  in
  for i = 0 to n - 1 do
    let blk = i / 128 and t = i mod 128 in
    Alcotest.(check int) "reversed" (((blk * 128) + (127 - t)) * 11) outd.(i)
  done

let test_launch_2d () =
  let b = Builder.create ~name:"grid2d" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let x = imad b ~$(ctaid_x b) ~$(ntid_x b) ~$(tid_x b) in
  let y = imad b ~$(ctaid_y b) ~$(ntid_y b) ~$(tid_y b) in
  let w = imul b ~$(nctaid_x b) ~$(ntid_x b) in
  let idx = imad b ~$y ~$w ~$x in
  st b out ~$idx ~$(imad b ~$y (ci 1000) ~$x);
  let kernel = finish b in
  let launch = { ntid_x = 8; ntid_y = 4; nctaid_x = 2; nctaid_y = 3 } in
  let n = 16 * 12 in
  let outd = Array.make n (-1) in
  let _ =
    run_kernel kernel ~launch ~params:[||] ~data:[ ("out", E.I_data outd) ] ()
  in
  for y = 0 to 11 do
    for x = 0 to 15 do
      Alcotest.(check int) "2d index" ((y * 1000) + x) outd.((y * 16) + x)
    done
  done

let test_quantize_hook () =
  (* The hook must apply per static site: quantise one instruction's
     result to fp8 and check the output reflects it. *)
  let b = Builder.create ~name:"qh" in
  let open Builder in
  let out = global_buffer b F32 "out" in
  let i = global_thread_id_x b in
  let v = fadd b (cf 1.0) (cf 0.2345678) in
  st b out ~$i ~$v;
  let kernel = finish b in
  let sites = E.float_def_sites kernel in
  Alcotest.(check int) "one float site" 1 (List.length sites);
  let pc, _ = List.hd sites in
  let fp8 = Gpr_fp.Format_.of_level 6 in
  let config =
    { E.default_config with
      quantize = Some (fun p v -> if p = pc then Gpr_fp.Format_.quantize fp8 v else v) }
  in
  let outd = Array.make 32 0.0 in
  let _ =
    run_kernel kernel ~launch:(launch_1d ~block:32 ~grid:1) ~params:[||]
      ~data:[ ("out", E.F_data outd) ] ~config ()
  in
  let expect = Gpr_fp.Format_.quantize fp8 1.2345678 in
  Alcotest.(check (float 0.0)) "quantised result" expect outd.(0);
  Alcotest.(check bool) "actually changed" true (outd.(0) <> 1.2345678)

let test_trace_contents () =
  let b = Builder.create ~name:"tr" in
  let open Builder in
  let x = global_buffer b F32 "x" in
  let i = global_thread_id_x b in
  let v = ld b x ~$i in
  let w = fmul b ~$v ~$v in
  st b x ~$i ~$w;
  let kernel = finish b in
  let data = [ ("x", E.F_data (Array.make 64 1.5)) ] in
  let bindings = E.bindings_for kernel ~data () in
  let trace =
    Option.get
      (E.run kernel ~launch:(launch_1d ~block:32 ~grid:2)
         ~params:[||] ~bindings { E.default_config with collect_trace = true })
  in
  Alcotest.(check int) "blocks" 2 trace.T.num_blocks;
  Alcotest.(check int) "warps/block" 1 trace.T.warps_per_block;
  (* 4 static instrs (imad for gid, ld, fmul, st) x 2 warps *)
  Alcotest.(check int) "items" 8 (Array.length trace.T.items);
  let w0 = T.warp_items trace ~block_id:0 ~warp:0 in
  Alcotest.(check int) "warp stream" 4 (List.length w0);
  let lds = List.filter (fun (it : T.item) -> it.t_mem <> None) w0 in
  Alcotest.(check int) "mem items" 2 (List.length lds);
  List.iter
    (fun (it : T.item) ->
       match it.t_mem with
       | Some m ->
         Alcotest.(check int) "full warp" 32 (Array.length m.m_addresses);
         Alcotest.(check bool) "coalesced" true
           (let sorted = Array.copy m.m_addresses in
            Array.sort compare sorted;
            sorted.(31) - sorted.(0) = 31 * 4)
       | None -> ())
    lds;
  Alcotest.(check int) "thread instrs" (4 * 64) trace.T.thread_instructions

let test_partial_warp () =
  (* 48 threads per block: second warp is half empty. *)
  let b = Builder.create ~name:"partial" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  st b out ~$i ~$(iadd b ~$i (ci 1));
  let kernel = finish b in
  let outd = Array.make 48 0 in
  let _ =
    run_kernel kernel ~launch:(launch_1d ~block:48 ~grid:1) ~params:[||]
      ~data:[ ("out", E.I_data outd) ] ()
  in
  for i = 0 to 47 do
    Alcotest.(check int) "partial warp" (i + 1) outd.(i)
  done

let test_out_of_bounds_raises () =
  let b = Builder.create ~name:"oob" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  st b out ~$(iadd b ~$i (ci 1000)) (ci 1);
  let kernel = finish b in
  Alcotest.check_raises "oob store"
    (Failure "oob: st out[1031] out of bounds (len 32)")
    (fun () ->
       ignore
         (run_kernel kernel ~launch:(launch_1d ~block:32 ~grid:1) ~params:[||]
            ~data:[ ("out", E.I_data (Array.make 32 0)) ] ()))

let test_selp_and_cvt () =
  let b = Builder.create ~name:"selcvt" in
  let open Builder in
  let out = global_buffer b F32 "out" in
  let i = global_thread_id_x b in
  let p = ilt b ~$i (ci 16) in
  let sel = selp b S32 (ci 3) (ci (-4)) p in
  let f = itof b ~$sel in
  let back = ftoi b ~$(fmul b ~$f (cf 2.5)) in
  st b out ~$i ~$(itof b ~$back);
  let kernel = finish b in
  let outd = Array.make 32 0.0 in
  let _ =
    run_kernel kernel ~launch:(launch_1d ~block:32 ~grid:1) ~params:[||]
      ~data:[ ("out", E.F_data outd) ] ()
  in
  for i = 0 to 31 do
    (* 3 * 2.5 = 7.5 -> trunc 7 ; -4 * 2.5 = -10 -> -10 *)
    Alcotest.(check (float 0.0)) "selp+cvt"
      (if i < 16 then 7.0 else -10.0)
      outd.(i)
  done

let test_transcendentals_match_reference () =
  let b = Builder.create ~name:"sfu" in
  let open Builder in
  let inp = global_buffer b F32 "inp" in
  let out = global_buffer b F32 "out" in
  let i = global_thread_id_x b in
  let x = ld b inp ~$i in
  let base = imul b ~$i (ci 6) in
  st b out ~$base ~$(fsin b ~$x);
  st b out ~$(iadd b ~$base (ci 1)) ~$(fcos b ~$x);
  st b out ~$(iadd b ~$base (ci 2)) ~$(fex2 b ~$x);
  st b out ~$(iadd b ~$base (ci 3)) ~$(flg2 b ~$(fabs b ~$x));
  st b out ~$(iadd b ~$base (ci 4)) ~$(frsqrt b ~$(fabs b ~$x));
  st b out ~$(iadd b ~$base (ci 5)) ~$(ffloor b ~$x);
  let kernel = finish b in
  let f32 v = Int32.float_of_bits (Int32.bits_of_float v) in
  let xs = Array.init 32 (fun k -> f32 (0.1 +. (float_of_int k /. 7.0))) in
  let outd = Array.make (32 * 6) 0.0 in
  let _ =
    run_kernel kernel ~launch:(launch_1d ~block:32 ~grid:1) ~params:[||]
      ~data:[ ("inp", E.F_data (Array.copy xs)); ("out", E.F_data outd) ] ()
  in
  Array.iteri
    (fun k x ->
       let check name expect got =
         Alcotest.(check (float 1e-6)) (Printf.sprintf "%s(%g)" name x)
           (f32 expect) got
       in
       check "sin" (sin x) outd.(k * 6);
       check "cos" (cos x) outd.((k * 6) + 1);
       check "ex2" (Float.exp2 x) outd.((k * 6) + 2);
       check "lg2" (Float.log2 (Float.abs x)) outd.((k * 6) + 3);
       check "rsqrt" (1.0 /. sqrt (Float.abs x)) outd.((k * 6) + 4);
       check "floor" (Float.floor x) outd.((k * 6) + 5))
    xs

let test_u32_semantics () =
  (* Unsigned compare and logical shift differ from the signed path. *)
  let b = Builder.create ~name:"u32" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  let neg = mov b U32 (ci (-1)) in          (* 0xffffffff *)
  let shifted = ishr b ~ty:U32 ~$neg (ci 4) in (* logical: 0x0fffffff *)
  let pu = setp b Lt U32 (ci 1) ~$neg in    (* 1 <u 0xffffffff: true *)
  let ps = ilt b (ci 1) (ci (-1)) in        (* 1 <s -1: false *)
  let r1 = selp b S32 (ci 1) (ci 0) pu in
  let r2 = selp b S32 (ci 1) (ci 0) ps in
  let base = imul b ~$i (ci 3) in
  st b out ~$base ~$shifted;
  st b out ~$(iadd b ~$base (ci 1)) ~$r1;
  st b out ~$(iadd b ~$base (ci 2)) ~$r2;
  let kernel = finish b in
  let outd = Array.make 96 0 in
  let _ =
    run_kernel kernel ~launch:(launch_1d ~block:32 ~grid:1) ~params:[||]
      ~data:[ ("out", E.I_data outd) ] ()
  in
  Alcotest.(check int) "logical shift" 0x0fffffff outd.(0);
  Alcotest.(check int) "unsigned lt" 1 outd.(1);
  Alcotest.(check int) "signed lt" 0 outd.(2)

let prop_float_ops_match_reference =
  QCheck.Test.make ~name:"warp float ops match scalar reference" ~count:50
    QCheck.(pair (float_range (-100.0) 100.0) (float_range 0.1 100.0))
    (fun (a, c) ->
       let b = Builder.create ~name:"fref" in
       let open Builder in
       let out = global_buffer b F32 "out" in
       let i = global_thread_id_x b in
       let x = fadd b (cf a) (cf c) in
       let y = fmul b ~$x (cf a) in
       let z = fdiv b ~$y (cf c) in
       let w = fsqrt b ~$(fabs b ~$z) in
       st b out ~$i ~$w;
       let kernel = finish b in
       let outd = Array.make 32 0.0 in
       let _ =
         run_kernel kernel ~launch:(launch_1d ~block:32 ~grid:1) ~params:[||]
           ~data:[ ("out", E.F_data outd) ] ()
       in
       let f32 v = Int32.float_of_bits (Int32.bits_of_float v) in
       (* Immediates are rounded to f32 before use, as in the executor. *)
       let a = f32 a and c = f32 c in
       let expect =
         f32 (sqrt (Float.abs (f32 (f32 (f32 (a +. c) *. a) /. c))))
       in
       Float.abs (outd.(0) -. expect) <= 1e-6 *. Float.max 1.0 (Float.abs expect))

let () =
  let q = QCheck_alcotest.to_alcotest ~verbose:false in
  Alcotest.run "exec"
    [
      ( "functional",
        [
          Alcotest.test_case "saxpy" `Quick test_saxpy;
          Alcotest.test_case "integer semantics" `Quick test_integer_semantics;
          Alcotest.test_case "selp + cvt" `Quick test_selp_and_cvt;
          Alcotest.test_case "transcendentals" `Quick
            test_transcendentals_match_reference;
          Alcotest.test_case "u32 semantics" `Quick test_u32_semantics;
          Alcotest.test_case "partial warp" `Quick test_partial_warp;
          Alcotest.test_case "2d launch" `Quick test_launch_2d;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "if reconvergence" `Quick test_divergence_reconvergence;
          Alcotest.test_case "per-thread trip counts" `Quick test_loop_trip_counts;
          Alcotest.test_case "early ret guard" `Quick test_early_ret_guard;
        ] );
      ( "shared+barrier",
        [ Alcotest.test_case "block reversal" `Quick test_shared_memory_barrier ] );
      ( "hooks",
        [
          Alcotest.test_case "quantize hook" `Quick test_quantize_hook;
          Alcotest.test_case "trace contents" `Quick test_trace_contents;
          Alcotest.test_case "oob raises" `Quick test_out_of_bounds_raises;
        ] );
      ("props", [ q prop_float_ops_match_reference ]);
    ]
