(* Serve daemon: protocol codec, admission control, deadlines,
   coalescing and the one-request/one-response contract, all over real
   socketpairs against a live server (no TCP, no filesystem socket). *)

module P = Gpr_serve.Protocol
module Server = Gpr_serve.Server
module Client = Gpr_serve.Client
module Work = Gpr_serve.Work
module J = Gpr_obs.Json

let default = Server.default_config

(* Run [f] against a live server; [conn ()] hands back a fresh client
   on a socketpair adopted by the IO loop. *)
let with_server ?(cfg = default) f =
  let t = Server.create cfg in
  let d = Domain.spawn (fun () -> Server.run t) in
  let clients = ref [] in
  let conn () =
    let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Server.attach t b;
    let c = Client.of_fd a in
    clients := c :: !clients;
    c
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Domain.join d;
      List.iter Client.close !clients)
    (fun () -> f t conn)

let call c req =
  match Client.call ~timeout_s:30.0 c req with
  | Ok r -> r
  | Error m -> Alcotest.failf "call id %d: %s" req.P.q_id m

let code = Alcotest.testable
    (Fmt.of_to_string P.code_to_string) ( = )

let check_error name expected (r : P.response) =
  match r.P.s_result with
  | Ok _ -> Alcotest.failf "%s: expected %s, got success" name
              (P.code_to_string expected)
  | Error e -> Alcotest.check code name expected e.P.e_code

(* ---------------- codec ---------------- *)

let test_codec_roundtrip () =
  let req =
    P.request ~id:7 ~kernel:"Hotspot" ~backend:"slice" ~deadline_ms:250
      ~tag:"salt" "estimate"
  in
  match P.request_of_json (P.request_to_json req) with
  | Error e -> Alcotest.fail e
  | Ok req' ->
    Alcotest.(check bool) "request round-trips" true (req = req');
    let resp = { P.s_id = 7; s_result = Ok (J.Obj [ ("x", J.Int 1) ]) } in
    (match P.response_of_json (P.response_to_json resp) with
     | Error e -> Alcotest.fail e
     | Ok r -> Alcotest.(check bool) "response round-trips" true (r = resp));
    let err =
      { P.s_id = 9;
        s_result = Error { P.e_code = P.Overloaded; e_message = "full" } }
    in
    (match P.response_of_json (P.response_to_json err) with
     | Error e -> Alcotest.fail e
     | Ok r -> Alcotest.(check bool) "error round-trips" true (r = err))

let test_decoder_split_frames () =
  (* Two frames delivered one byte at a time decode to exactly two
     payloads. *)
  let f1 = J.to_string (J.Obj [ ("a", J.Int 1) ]) in
  let f2 = J.to_string (J.Obj [ ("b", J.Int 2) ]) in
  let wire =
    Bytes.cat (P.encode_frame f1) (P.encode_frame f2) |> Bytes.to_string
  in
  let d = P.decoder ~max_bytes:1024 in
  let got = ref [] in
  String.iter
    (fun ch ->
      P.feed d (Bytes.make 1 ch) 1;
      let rec drain () =
        match P.next d with
        | `Frame f -> got := f :: !got; drain ()
        | `Await -> ()
        | `Oversized _ -> Alcotest.fail "spurious oversized"
      in
      drain ())
    wire;
  Alcotest.(check (list string)) "both frames" [ f1; f2 ] (List.rev !got)

(* ---------------- round-trip ---------------- *)

let test_roundtrip () =
  with_server ~cfg:{ default with Server.workers = 1 } @@ fun _t conn ->
  let c = conn () in
  let r = call c (P.request ~id:1 "ping") in
  Alcotest.(check int) "id echoed" 1 r.P.s_id;
  (match r.P.s_result with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "ping failed: %s" e.P.e_message);
  (* A real pipeline verb, byte-identical to the in-process run. *)
  let r = call c (P.request ~id:2 ~kernel:"Hotspot" "plan") in
  (match r.P.s_result with
   | Error e -> Alcotest.failf "plan failed: %s" e.P.e_message
   | Ok served ->
     let local =
       match Work.resolve (P.request ~id:2 ~kernel:"Hotspot" "plan") with
       | Ok w -> Work.run w
       | Error e -> Alcotest.failf "resolve: %s" e.P.e_message
     in
     Alcotest.(check string) "served payload byte-identical"
       (J.to_string local) (J.to_string served));
  (* Cached repeat is the same bytes again. *)
  let r2 = call c (P.request ~id:3 ~kernel:"Hotspot" "plan") in
  (match (r.P.s_result, r2.P.s_result) with
   | Ok a, Ok b ->
     Alcotest.(check string) "cache serves identical bytes"
       (J.to_string a) (J.to_string b)
   | _ -> Alcotest.fail "cached repeat failed");
  let r = call c (P.request ~id:4 "stats") in
  (match r.P.s_result with
   | Error e -> Alcotest.failf "stats failed: %s" e.P.e_message
   | Ok j ->
     Alcotest.(check bool) "stats counts the cache hit" true
       (match J.member "cache_hits" j with
        | Some (J.Int n) -> n >= 1
        | _ -> false))

(* ---------------- unknown names (typed, never raising) ---------------- *)

let test_unknown_names () =
  with_server ~cfg:{ default with Server.workers = 1 } @@ fun _t conn ->
  let c = conn () in
  let r = call c (P.request ~id:1 ~kernel:"no-such-kernel" "estimate") in
  check_error "unknown kernel" P.Unknown_kernel r;
  (match r.P.s_result with
   | Error e ->
     Alcotest.(check bool) "message carries the gpr list hint" true
       (let needle = "try `gpr list`" in
        let hay = e.P.e_message in
        let n = String.length needle in
        let rec scan i =
          i + n <= String.length hay
          && (String.sub hay i n = needle || scan (i + 1))
        in
        scan 0)
   | Ok _ -> ());
  let r =
    call c (P.request ~id:2 ~kernel:"Hotspot" ~backend:"no-such" "estimate")
  in
  check_error "unknown backend" P.Unknown_backend r;
  let r = call c (P.request ~id:3 "frobnicate") in
  check_error "unknown verb" P.Bad_request r

let contains hay needle =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length hay && (String.sub hay i n = needle || scan (i + 1))
  in
  scan 0

(* The colocate twins of the CLI's exit-1 hints, checked at the resolve
   layer (no simulation runs on these paths). *)
let test_colocate_unknown_names () =
  let expect_err what code needle req =
    match Work.resolve req with
    | Ok _ -> Alcotest.failf "%s: resolved instead of failing" what
    | Error e ->
      Alcotest.(check bool) (what ^ ": code") true (e.P.e_code = code);
      Alcotest.(check bool)
        (what ^ ": message carries the hint")
        true
        (contains e.P.e_message needle)
  in
  expect_err "unknown kernel-set member" P.Unknown_kernel "try `gpr list`"
    (P.request ~id:1 ~kernel:"Hotspot,no-such-kernel" "colocate");
  expect_err "unknown policy" P.Bad_request "--policy fifo|rr|binpack"
    (P.request ~id:2 ~kernel:"Hotspot,DWT2D" ~policy:"sjf" "colocate");
  expect_err "unknown backend" P.Unknown_backend "available"
    (P.request ~id:3 ~kernel:"Hotspot,DWT2D" ~backend:"no-such" "colocate");
  expect_err "missing kernel set" P.Bad_request "kernel"
    (P.request ~id:4 "colocate");
  match
    Work.resolve
      (P.request ~id:5 ~kernel:"Hotspot, DWT2D" ~policy:"FIFO" "colocate")
  with
  | Ok (Work.Colocate (ws, _, p)) ->
    let module PM = (val p : Gpr_sim.Sim_multi.POLICY) in
    Alcotest.(check (list string))
      "set parses with spaces, policy case-insensitively"
      [ "Hotspot"; "DWT2D" ]
      (List.map (fun (w : Gpr_workloads.Workload.t) -> w.name) ws);
    Alcotest.(check string) "policy id" "fifo" PM.id
  | Ok _ -> Alcotest.fail "resolved to the wrong work item"
  | Error e -> Alcotest.failf "valid colocate rejected: %s" e.P.e_message

(* ---------------- malformed input ---------------- *)

let test_malformed_json () =
  with_server ~cfg:{ default with Server.workers = 1 } @@ fun _t conn ->
  let c = conn () in
  Client.send_raw c "{this is not json";
  (match Client.recv ~timeout_s:30.0 c with
   | `Response r ->
     Alcotest.(check int) "parse errors use the reserved id 0" 0 r.P.s_id;
     check_error "parse error" P.Parse_error r
   | _ -> Alcotest.fail "no response to malformed JSON");
  (* The connection survives a parse error. *)
  let r = call c (P.request ~id:5 "ping") in
  Alcotest.(check int) "connection still usable" 5 r.P.s_id

let test_oversized_frame () =
  with_server
    ~cfg:{ default with Server.workers = 1; max_frame_bytes = 512 }
  @@ fun _t conn ->
  let c = conn () in
  Client.send_raw c (String.make 4096 'x');
  (match Client.recv ~timeout_s:30.0 c with
   | `Response r ->
     Alcotest.(check int) "oversized uses the reserved id 0" 0 r.P.s_id;
     check_error "oversized frame" P.Oversized_frame r
   | _ -> Alcotest.fail "no response to oversized frame");
  (* The length prefix can no longer be trusted: server closes. *)
  (match Client.recv ~timeout_s:30.0 c with
   | `Eof -> ()
   | `Response _ -> Alcotest.fail "expected close after oversized frame"
   | `Timeout -> Alcotest.fail "server kept the poisoned connection open"
   | `Bad m -> Alcotest.fail m)

(* ---------------- deadlines ---------------- *)

let test_deadline_expiry () =
  with_server ~cfg:{ default with Server.workers = 1 } @@ fun t conn ->
  let c = conn () in
  let r =
    call c (P.request ~id:1 ~kernel:"Hotspot" ~deadline_ms:0 "estimate")
  in
  check_error "already-expired deadline" P.Deadline_exceeded r;
  Alcotest.(check bool) "counted" true (Server.deadline_expired t >= 1);
  (* The same request with a sane deadline still works afterwards. *)
  let r =
    call c (P.request ~id:2 ~kernel:"Hotspot" ~deadline_ms:60_000 "estimate")
  in
  (match r.P.s_result with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "follow-up failed: %s" e.P.e_message)

(* ---------------- admission control ---------------- *)

let test_queue_overflow () =
  with_server
    ~cfg:{ default with Server.workers = 1; queue_depth = 1;
                        debug_sleep = true }
  @@ fun t conn ->
  let c = conn () in
  (* Occupy the single worker... *)
  Client.send c (P.request ~id:1 ~sleep_ms:400 "sleep");
  Unix.sleepf 0.1;
  (* ...fill the queue (distinct sleep -> distinct key)... *)
  Client.send c (P.request ~id:2 ~sleep_ms:350 "sleep");
  Unix.sleepf 0.1;
  (* ...and overflow it. *)
  Client.send c (P.request ~id:3 ~sleep_ms:300 "sleep");
  let got = Hashtbl.create 4 in
  for _ = 1 to 3 do
    match Client.recv ~timeout_s:30.0 c with
    | `Response r -> Hashtbl.replace got r.P.s_id r
    | other ->
      Alcotest.failf "lost a response (%s)"
        (match other with
         | `Eof -> "eof" | `Timeout -> "timeout" | `Bad m -> m
         | `Response _ -> assert false)
  done;
  let find id =
    match Hashtbl.find_opt got id with
    | Some r -> r
    | None -> Alcotest.failf "no response for id %d" id
  in
  check_error "third request rejected" P.Overloaded (find 3);
  (match (find 1).P.s_result, (find 2).P.s_result with
   | Ok _, Ok _ -> ()
   | _ -> Alcotest.fail "admitted requests must still complete");
  Alcotest.(check int) "reject counted" 1 (Server.rejected_overloaded t)

(* ---------------- coalescing ---------------- *)

let test_duplicate_coalescing () =
  with_server
    ~cfg:{ default with Server.workers = 1; debug_sleep = true }
  @@ fun t conn ->
  let a = conn () and b = conn () in
  (* Same key from two connections while the work is in flight: one
     execution, two responses. *)
  Client.send a (P.request ~id:10 ~sleep_ms:300 "sleep");
  Unix.sleepf 0.05;
  Client.send b (P.request ~id:20 ~sleep_ms:300 "sleep");
  let ra =
    match Client.recv ~timeout_s:30.0 a with
    | `Response r -> r
    | _ -> Alcotest.fail "client a lost its response"
  in
  let rb =
    match Client.recv ~timeout_s:30.0 b with
    | `Response r -> r
    | _ -> Alcotest.fail "client b lost its response"
  in
  Alcotest.(check int) "a keeps its id" 10 ra.P.s_id;
  Alcotest.(check int) "b keeps its id" 20 rb.P.s_id;
  (match ra.P.s_result, rb.P.s_result with
   | Ok ja, Ok jb ->
     Alcotest.(check string) "identical payloads"
       (J.to_string ja) (J.to_string jb)
   | _ -> Alcotest.fail "coalesced requests must both succeed");
  Alcotest.(check int) "one coalesce counted" 1 (Server.coalesced t);
  (* Different tag -> different key -> no coalescing with the cacheable
     path either. *)
  let r1 = call a (P.request ~id:11 ~kernel:"Hotspot" ~tag:"x" "lint") in
  let r2 = call b (P.request ~id:21 ~kernel:"Hotspot" ~tag:"y" "lint") in
  (match r1.P.s_result, r2.P.s_result with
   | Ok ja, Ok jb ->
     (* Same kernel, so same bytes — but via two executions (the tag
        salts the key); the coalesce counter must not move. *)
     Alcotest.(check string) "tag changes key, not payload"
       (J.to_string ja) (J.to_string jb)
   | _ -> Alcotest.fail "lint failed");
  Alcotest.(check int) "tags prevented coalescing" 1 (Server.coalesced t)

(* ---------------- property: one response per request ---------------- *)

let arb_request =
  let open QCheck in
  let gen =
    Gen.(
      let* id = int_range 1 10_000 in
      let* verb =
        oneofl [ "ping"; "stats"; "plan"; "lint"; "estimate"; "profile";
                 "colocate"; "sleep"; "bogus"; "" ]
      in
      let* kernel = oneofl [ None; Some "Hotspot"; Some "nope";
                             Some "Hotspot,nope" ] in
      let* backend = oneofl [ None; Some "slice"; Some "baseline";
                              Some "wat" ] in
      let* policy = oneofl [ None; Some "fifo"; Some "sjf" ] in
      let* tag = oneofl [ ""; "t1" ] in
      let* deadline_ms = oneofl [ None; Some 60_000 ] in
      return
        { P.q_id = id; q_verb = verb; q_kernel = kernel; q_source = None;
          q_block = 256; q_grid = 16; q_backend = backend; q_policy = policy;
          q_deadline_ms = deadline_ms; q_sleep_ms = 0; q_tag = tag })
  in
  QCheck.make gen
    ~print:(fun r -> J.to_string (P.request_to_json r))

let test_one_response_property () =
  (* One live server for the whole campaign; every well-formed request
     must produce exactly one well-formed response carrying its id —
     success or typed error, never silence, never a raise.  Any extra
     or missing response desynchronises the id check on the next
     iteration. *)
  with_server ~cfg:{ default with Server.workers = 2 } @@ fun _t conn ->
  let c = conn () in
  let prop req =
    let r = call c req in
    r.P.s_id = req.P.q_id
    && (match r.P.s_result with
        | Ok _ -> true
        | Error e -> String.length e.P.e_message > 0)
  in
  let cell = QCheck.Test.make_cell ~count:40 ~name:"one response" arb_request prop in
  (match QCheck.Test.check_cell_exn cell with
   | () -> ()
   | exception QCheck.Test.Test_fail (_, l) ->
     Alcotest.failf "counterexample: %s" (String.concat "; " l));
  (* Nothing left over on the wire. *)
  match Client.recv ~timeout_s:0.2 c with
  | `Timeout -> ()
  | `Response r ->
    Alcotest.failf "stray response for id %d" r.P.s_id
  | `Eof -> Alcotest.fail "server closed a healthy connection"
  | `Bad m -> Alcotest.fail m

(* ---------------- graceful shutdown ---------------- *)

let test_stop_drains () =
  let cfg = { default with Server.workers = 1; debug_sleep = true } in
  let t = Server.create cfg in
  let d = Domain.spawn (fun () -> Server.run t) in
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Server.attach t b;
  let c = Client.of_fd a in
  Client.send c (P.request ~id:1 ~sleep_ms:300 "sleep");
  Unix.sleepf 0.1;
  (* Stop while the sleep is in flight: it must still be answered. *)
  Server.stop t;
  (match Client.recv ~timeout_s:30.0 c with
   | `Response r ->
     Alcotest.(check int) "in-flight work answered across stop" 1 r.P.s_id;
     (match r.P.s_result with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "in-flight failed: %s" e.P.e_message)
   | _ -> Alcotest.fail "in-flight response lost on shutdown");
  Domain.join d;
  Client.close c

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "split frames" `Quick test_decoder_split_frames;
        ] );
      ( "server",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "unknown names" `Quick test_unknown_names;
          Alcotest.test_case "colocate unknown names" `Quick
            test_colocate_unknown_names;
          Alcotest.test_case "malformed JSON" `Quick test_malformed_json;
          Alcotest.test_case "oversized frame" `Quick test_oversized_frame;
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
          Alcotest.test_case "queue overflow" `Quick test_queue_overflow;
          Alcotest.test_case "duplicate coalescing" `Quick
            test_duplicate_coalescing;
          Alcotest.test_case "stop drains in-flight" `Quick test_stop_drains;
        ] );
      ( "property",
        [
          Alcotest.test_case "one well-formed response" `Quick
            test_one_response_property;
        ] );
    ]
