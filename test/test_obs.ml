(* gpr_obs: metrics registry, JSON emitter/parser, Chrome trace
   collector, stall taxonomy.

   The headline property is QCheck-driven: gpr_engine pool workers
   hammering disjoint and shared counters concurrently must never lose
   an update (the cells are atomics; the registry hands every domain
   the same cell for the same name).  CI runs this binary both with
   GPR_JOBS=1 and with -j 4 worth of parallel suites. *)

module J = Gpr_obs.Json
module Metrics = Gpr_obs.Metrics
module Chrome = Gpr_obs.Chrome
module Stall = Gpr_obs.Stall
module Pool = Gpr_engine.Pool

let qcheck_case ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---------------------------------------------------------------- *)
(* Metrics *)

(* Each test owns the process-wide registry for its duration; reset
   and disable on the way out so ordering between tests cannot matter. *)
let with_recording f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

let metrics_pool_no_lost_updates =
  qcheck_case ~count:15 "pool workers lose no counter updates"
    QCheck.(pair (int_range 1 4) (int_range 1 5))
    (fun (jobs, scale) ->
      with_recording (fun () ->
          let shared = Metrics.counter "test.obs.shared" in
          let workers = 8 and incs = scale * 200 in
          let worker w =
            (* Re-register by name inside the domain: idempotent
               registration must hand back the same cell. *)
            let mine =
              Metrics.counter (Printf.sprintf "test.obs.worker.%d" w)
            in
            for _ = 1 to incs do
              Metrics.incr shared;
              Metrics.incr mine;
              Metrics.incr (Metrics.counter "test.obs.shared")
            done
          in
          Pool.with_pool ~jobs (fun p ->
              ignore (Pool.map_list p worker (List.init workers Fun.id)));
          Metrics.value shared = 2 * workers * incs
          && List.for_all
               (fun w ->
                 Metrics.value
                   (Metrics.counter (Printf.sprintf "test.obs.worker.%d" w))
                 = incs)
               (List.init workers Fun.id)))

let test_metrics_disabled_is_inert () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let c = Metrics.counter "test.obs.off" in
  let h = Metrics.histogram "test.obs.off_h" in
  Metrics.incr c;
  Metrics.add c 41;
  Metrics.observe h 3;
  Alcotest.(check int) "counter untouched" 0 (Metrics.value c);
  Alcotest.(check bool) "recording reported off" false (Metrics.enabled ());
  Metrics.set_enabled true;
  Metrics.incr c;
  Alcotest.(check int) "counts once enabled" 1 (Metrics.value c);
  Metrics.set_enabled false;
  Metrics.reset ()

let test_metrics_registration () =
  with_recording (fun () ->
      let c = Metrics.counter "test.obs.same" in
      let c' = Metrics.counter "test.obs.same" in
      Metrics.incr c;
      Metrics.incr c';
      Alcotest.(check int) "same name, same cell" 2 (Metrics.value c);
      Alcotest.check_raises "counter name taken by histogram"
        (Invalid_argument "Metrics.histogram: \"test.obs.same\" is a counter")
        (fun () -> ignore (Metrics.histogram "test.obs.same"));
      let _h = Metrics.histogram "test.obs.h" in
      Alcotest.check_raises "histogram name taken by counter"
        (Invalid_argument "Metrics.counter: \"test.obs.h\" is a histogram")
        (fun () -> ignore (Metrics.counter "test.obs.h")))

let test_metrics_histogram_buckets () =
  with_recording (fun () ->
      let h = Metrics.histogram ~buckets:[ 4; 1; 2 ] "test.obs.buckets" in
      List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 5; 100 ];
      let entry =
        List.find
          (function
            | Metrics.Histogram { name; _ } -> name = "test.obs.buckets"
            | _ -> false)
          (Metrics.snapshot ())
      in
      match entry with
      | Metrics.Histogram { sum; total; buckets; _ } ->
        Alcotest.(check int) "total" 7 total;
        Alcotest.(check int) "sum" 115 sum;
        (* Bounds are sorted on registration; last bucket is overflow. *)
        Alcotest.(check (list (pair (option int) int)))
          "bucket counts"
          [ (Some 1, 2); (Some 2, 1); (Some 4, 2); (None, 2) ]
          buckets
      | _ -> Alcotest.fail "expected a histogram entry")

let test_metrics_snapshot_sorted_and_reset () =
  with_recording (fun () ->
      ignore (Metrics.counter "test.obs.zz");
      ignore (Metrics.counter "test.obs.aa");
      let names =
        List.map
          (function
            | Metrics.Counter { name; _ } | Metrics.Histogram { name; _ } ->
              name)
          (Metrics.snapshot ())
      in
      Alcotest.(check (list string)) "sorted" (List.sort compare names) names;
      Metrics.incr (Metrics.counter "test.obs.aa");
      Metrics.reset ();
      Alcotest.(check int) "reset keeps registration, zeroes value" 0
        (Metrics.value (Metrics.counter "test.obs.aa")));
  (* to_json must round-trip through our own parser. *)
  match J.parse (J.to_string (Metrics.to_json ())) with
  | Ok (J.Arr _) -> ()
  | Ok _ -> Alcotest.fail "metrics json is not an array"
  | Error e -> Alcotest.failf "metrics json does not parse: %s" e

(* ---------------------------------------------------------------- *)
(* Json *)

let json_gen =
  let open QCheck.Gen in
  let finite f = if Float.is_nan f || Float.abs f = infinity then 0.0 else f in
  let scalar =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) int;
        map (fun f -> J.Float (finite f)) float;
        map (fun s -> J.Str s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  let rec tree depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> J.Arr l) (list_size (int_bound 4) (tree (depth - 1))));
          ( 1,
            map
              (fun kvs -> J.Obj kvs)
              (list_size (int_bound 4)
                 (pair (string_size ~gen:printable (int_bound 6))
                    (tree (depth - 1)))) );
        ]
  in
  tree 3

let json_print_parse_roundtrip =
  qcheck_case ~count:200 "print |> parse is the identity"
    (QCheck.make ~print:J.to_string json_gen)
    (fun t ->
      match J.parse (J.to_string t) with
      | Ok t' ->
        (* Integral floats may legitimately come back as Int (the
           parser promotes fraction-free literals), except that our
           printer always emits a fraction for floats — so exact
           structural equality is the contract. *)
        t' = t
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let test_json_escaping () =
  let s = "quote\" back\\ slash\nnl\ttab\x01ctl" in
  (match J.parse (J.to_string (J.Str s)) with
  | Ok (J.Str s') -> Alcotest.(check string) "escape round-trip" s s'
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.failf "parse: %s" e);
  (match J.parse {|"Aé中"|} with
  | Ok (J.Str s') -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9\xe4\xb8\xad" s'
  | _ -> Alcotest.fail "unicode escape parse failed")

(* Non-finite floats used to be silently emitted as null; emission now
   rejects them (JSON has no encoding for nan/inf), and [J.number] is
   the explicit opt-in for the old null-mapping behaviour. *)
let test_json_nonfinite_rejected () =
  let raises f =
    match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "emitting %h raises" f)
        true
        (raises (fun () -> J.to_string (J.Float f)));
      Alcotest.(check bool)
        (Printf.sprintf "%h nested in an object raises" f)
        true
        (raises (fun () -> J.to_string (J.Obj [ ("x", J.Float f) ]))))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  Alcotest.(check string) "number maps non-finite to null" "null"
    (J.to_string (J.number Float.nan));
  Alcotest.(check string) "number keeps finite floats" "2.5"
    (J.to_string (J.number 2.5));
  (* Rejection happens before the file is opened, so an existing
     artifact is never truncated by a failing write. *)
  let path = Filename.temp_file "gpr_json" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      J.write_file path (J.Obj [ ("ok", J.Bool true) ]);
      let before = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check bool) "bad write raises" true
        (raises (fun () ->
             J.write_file path (J.Obj [ ("x", J.Float Float.nan) ])));
      let after = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check string) "artifact preserved on rejection" before after)

let test_json_rejects_malformed () =
  let bad =
    [
      ""; "{"; "["; "[1,]"; "{\"a\":}"; "{\"a\" 1}"; "tru"; "nul"; "+1";
      "1 2"; "\"unterminated"; "\"bad \\x escape\""; "[1, 2,"; "{]";
      "1.2.3"; "--1";
    ]
  in
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad

let test_json_member_and_ints () =
  match J.parse {|{"a": 1, "b": [2.5, true], "c": 9007199254740993}|} with
  | Ok t ->
    Alcotest.(check bool) "int member" true (J.member "a" t = Some (J.Int 1));
    Alcotest.(check bool) "array member" true
      (J.member "b" t = Some (J.Arr [ J.Float 2.5; J.Bool true ]));
    Alcotest.(check bool) "big integral fits OCaml int" true
      (J.member "c" t = Some (J.Int 9007199254740993));
    Alcotest.(check bool) "absent member" true (J.member "zz" t = None)
  | Error e -> Alcotest.failf "parse: %s" e

(* ---------------------------------------------------------------- *)
(* Chrome collector *)

let test_chrome_cap_and_validity () =
  let t = Chrome.create ~max_events:5 () in
  Chrome.name_process t ~pid:0 "proc";
  Chrome.name_thread t ~pid:0 ~tid:1 "thr";
  for i = 0 to 9 do
    Chrome.complete t ~name:"span" ~cat:"test" ~pid:0 ~tid:1
      ~ts_us:(float_of_int i) ~dur_us:1.0
      ~args:[ ("i", J.Int i) ]
      ()
  done;
  Chrome.instant t ~name:"late" ~ts_us:99.0 ();
  Alcotest.(check int) "cap enforced" 5 (Chrome.num_events t);
  Alcotest.(check int) "drops counted" 6 (Chrome.dropped t);
  let file = Filename.temp_file "gpr-obs-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Chrome.write_file t file;
      match J.parse_file file with
      | Ok doc -> (
        match J.member "traceEvents" doc with
        | Some (J.Arr events) ->
          (* 5 capped events + 2 metadata events (uncapped). *)
          Alcotest.(check int) "events + metadata emitted" 7
            (List.length events);
          let phases =
            List.filter_map (fun e -> J.member "ph" e) events
          in
          Alcotest.(check bool) "metadata survives the cap" true
            (List.mem (J.Str "M") phases)
        | _ -> Alcotest.fail "no traceEvents array")
      | Error e -> Alcotest.failf "trace does not parse: %s" e)

let test_chrome_sink () =
  Alcotest.(check bool) "no sink by default" true (Chrome.sink () = None);
  let t = Chrome.create () in
  Chrome.set_sink (Some t);
  Fun.protect
    ~finally:(fun () -> Chrome.set_sink None)
    (fun () ->
      (match Chrome.sink () with
      | Some t' -> Chrome.instant t' ~name:"via-sink" ~ts_us:0.0 ()
      | None -> Alcotest.fail "sink not installed");
      Alcotest.(check int) "event landed in the sink" 1 (Chrome.num_events t));
  Alcotest.(check bool) "sink cleared" true (Chrome.sink () = None)

(* ---------------------------------------------------------------- *)
(* Stall taxonomy *)

let test_stall_breakdown_algebra () =
  let mk issued stalls = { Stall.bd_issued = issued; bd_stalls = stalls } in
  let a = mk 10 [ (Stall.Scoreboard, 5); (Stall.Empty, 1) ] in
  let b = mk 2 [ (Stall.Scoreboard, 1); (Stall.Barrier, 3) ] in
  let s = Stall.add a b in
  Alcotest.(check int) "issued summed" 12 s.Stall.bd_issued;
  Alcotest.(check int) "scoreboard summed" 6 (Stall.get s Stall.Scoreboard);
  Alcotest.(check int) "barrier kept" 3 (Stall.get s Stall.Barrier);
  Alcotest.(check int) "total slots" 22 (Stall.total_slots s);
  Alcotest.(check int) "empty breakdown is zero" 0
    (Stall.total_slots Stall.empty);
  Alcotest.(check string) "pct on zero total is all zeros"
    "0.0/0.0/0.0/0.0/0.0/0.0"
    (Stall.pct_string Stall.empty);
  let half = mk 1 [ (Stall.Scoreboard, 1) ] in
  Alcotest.(check string) "pct in [all] order" "50.0/0.0/0.0/0.0/0.0/0.0"
    (Stall.pct_string half);
  Alcotest.(check int) "six causes" 6 (List.length Stall.all);
  (match J.parse (J.to_string (Stall.to_json s)) with
  | Ok doc ->
    Alcotest.(check bool) "json total matches" true
      (J.member "total_slots" doc = Some (J.Int 22))
  | Error e -> Alcotest.failf "stall json: %s" e)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          metrics_pool_no_lost_updates;
          Alcotest.test_case "disabled is inert" `Quick
            test_metrics_disabled_is_inert;
          Alcotest.test_case "registration" `Quick test_metrics_registration;
          Alcotest.test_case "histogram buckets" `Quick
            test_metrics_histogram_buckets;
          Alcotest.test_case "snapshot + reset" `Quick
            test_metrics_snapshot_sorted_and_reset;
        ] );
      ( "json",
        [
          json_print_parse_roundtrip;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "non-finite rejected" `Quick
            test_json_nonfinite_rejected;
          Alcotest.test_case "rejects malformed" `Quick
            test_json_rejects_malformed;
          Alcotest.test_case "member + ints" `Quick test_json_member_and_ints;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "cap + validity" `Quick
            test_chrome_cap_and_validity;
          Alcotest.test_case "global sink" `Quick test_chrome_sink;
        ] );
      ( "stall",
        [
          Alcotest.test_case "breakdown algebra" `Quick
            test_stall_breakdown_algebra;
        ] );
    ]
