(* Tests of the differential fuzzing subsystem itself: the oracle is
   clean on healthy code, catches injected analysis bugs, and the
   shrinker minimises counterexamples while preserving the failure
   class. *)

open Gpr_isa.Types
module Gen = Gpr_check.Gen
module Diff = Gpr_check.Diff
module Shrink = Gpr_check.Shrink
module Runner = Gpr_check.Runner
module Range = Gpr_analysis.Range
module I = Gpr_util.Interval

let test_generator_deterministic () =
  let a = Gen.generate 42 and b = Gen.generate 42 in
  Alcotest.(check string)
    "same kernel"
    (Gpr_isa.Pp.kernel_to_string a.Gen.kernel)
    (Gpr_isa.Pp.kernel_to_string b.Gen.kernel);
  Alcotest.(check bool) "same data" true (a.Gen.data () = b.Gen.data ());
  Alcotest.(check bool)
    "fresh arrays per call" false
    (match (a.Gen.data (), a.Gen.data ()) with
     | (_, Gpr_exec.Exec.I_data x) :: _, (_, Gpr_exec.Exec.I_data y) :: _ ->
       x == y
     | _ -> true)

let test_generator_varies () =
  let shapes =
    List.init 8 (fun i ->
        Gpr_isa.Pp.instr_count (Gen.generate (i + 1)).Gen.kernel)
  in
  Alcotest.(check bool)
    "kernels differ across seeds" true
    (List.length (List.sort_uniq compare shapes) > 1)

let test_clean_seeds () =
  let summary = Runner.run ~shrink:false ~seed:1 ~count:40 () in
  Alcotest.(check int) "all checked" 40 summary.Runner.checked;
  (match summary.Runner.reports with
   | [] -> ()
   | r :: _ -> Alcotest.fail (Runner.report_to_string r))

let test_clean_seeds_backend_stages () =
  (* The scheme-generic oracle stages (plain-vs-backend differential +
     timing parity) must also be clean on known-good seeds. *)
  let summary =
    Runner.run ~shrink:false ~backends:[ "spill"; "baseline" ] ~seed:1
      ~count:25 ()
  in
  Alcotest.(check int) "all checked" 25 summary.Runner.checked;
  (match summary.Runner.reports with
   | [] -> ()
   | r :: _ -> Alcotest.fail (Runner.report_to_string r));
  Alcotest.(check bool) "unknown backend rejected up front" true
    (match Runner.run ~shrink:false ~backends:[ "bogus" ] ~seed:1 ~count:1 () with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* Wrap a (possibly corrupted) interval analysis into the width
   record the oracle consumes: no known-bits/congruence/demanded
   refinement, so the product widths are exactly the interval widths
   under test. *)
let width_of_range (rt : Range.t) =
  let n = Array.length rt.Range.var_bits in
  {
    Gpr_analysis.Width.range = rt;
    known = Array.make n Gpr_analysis.Knownbits.Bot;
    cong = Array.make n Gpr_analysis.Congruence.Bot;
    demanded = Array.make n 32;
    var_bits = Array.copy rt.Range.var_bits;
  }

(* Corrupt the analysis result after the fact: collapsing every finite
   range to its lower bound makes the analysis claim values it cannot
   justify, which the runtime soundness hook must catch. *)
let collapse_ranges (rt : Range.t) =
  {
    rt with
    Range.var_ranges =
      Array.map
        (fun iv ->
           match iv with
           | I.Range (I.Finite lo, I.Finite hi) when hi > lo ->
             I.of_const lo
           | _ -> iv)
        rt.Range.var_ranges;
  }

let bad_analyze k ~launch =
  width_of_range (collapse_ranges (Range.analyze k ~launch))

let test_catches_bad_ranges () =
  let case = Gen.generate 3 in
  match Diff.check ~analyze:bad_analyze Diff.Exact case with
  | () -> Alcotest.fail "corrupted analysis went undetected"
  | exception Diff.Check_failed (Diff.Range_violation _) -> ()
  | exception Diff.Check_failed f ->
    Alcotest.fail ("wrong failure class: " ^ Diff.to_string f)

(* Corrupt the claimed widths instead: ranges stay sound, so the first
   thing to break is the slice round-trip through the datapath. *)
let narrow_bits (rt : Range.t) =
  {
    rt with
    Range.var_bits =
      Array.map (fun b -> if b > 2 then b - 2 else b) rt.Range.var_bits;
  }

let narrow_analyze k ~launch =
  width_of_range (narrow_bits (Range.analyze k ~launch))

let test_catches_bad_widths () =
  let case = Gen.generate 3 in
  match Diff.check ~analyze:narrow_analyze Diff.Exact case with
  | () -> Alcotest.fail "corrupted widths went undetected"
  | exception Diff.Check_failed (Diff.Storage_violation _) -> ()
  | exception Diff.Check_failed f ->
    Alcotest.fail ("wrong failure class: " ^ Diff.to_string f)

let test_shrinks_counterexample () =
  let case = Gen.generate 3 in
  let still_fails kernel =
    match Diff.check ~analyze:bad_analyze Diff.Exact { case with Gen.kernel } with
    | () -> false
    | exception Diff.Check_failed f -> Diff.category f = "range"
    | exception _ -> false
  in
  Alcotest.(check bool) "original fails" true (still_fails case.Gen.kernel);
  let shrunk = Shrink.shrink ~still_fails case.Gen.kernel in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk %d -> %d" (Shrink.size case.Gen.kernel)
       (Shrink.size shrunk))
    true
    (Shrink.size shrunk < Shrink.size case.Gen.kernel);
  Alcotest.(check bool) "shrunk still fails" true (still_fails shrunk);
  Alcotest.(check bool)
    "local minimum is small" true
    (Shrink.size shrunk <= 5)

(* The shrinker on a synthetic monotone predicate: "contains an ffma"
   survives any removal of other instructions, so greedy descent must
   reach exactly one instruction. *)
let test_shrink_to_predicate_minimum () =
  let b = Gpr_isa.Builder.create ~name:"shr" in
  let open Gpr_isa.Builder in
  let out = global_buffer b F32 "out" in
  let gid = global_thread_id_x b in
  let x = itof b ~$gid in
  let y = fadd b ~$x (cf 1.0) in
  let z = ffma b ~$x ~$y (cf 0.5) in
  let w = fmul b ~$z ~$z in
  st b out ~$gid ~$w;
  let kernel = finish b in
  let has_ffma k =
    Array.exists
      (fun blk ->
         Array.exists (function Ffma _ -> true | _ -> false) blk.instrs)
      k.k_blocks
  in
  let shrunk = Shrink.shrink ~still_fails:has_ffma kernel in
  Alcotest.(check int) "one instruction left" 1 (Shrink.size shrunk);
  Alcotest.(check bool) "it is the ffma" true (has_ffma shrunk)

let test_copy_kernel_isolates () =
  let case = Gen.generate 5 in
  let k = case.Gen.kernel in
  let copy = Shrink.copy_kernel k in
  copy.k_blocks.(0).instrs <- [||];
  Alcotest.(check bool)
    "original untouched" true
    (Array.length k.k_blocks.(0).instrs > 0)

let test_exec_step_budget () =
  (* A deliberate infinite loop must hit the executor's watchdog, not
     hang: this is what keeps the shrinker total. *)
  let b = Gpr_isa.Builder.create ~name:"spin" in
  let open Gpr_isa.Builder in
  let out = global_buffer b S32 "out" in
  let gid = global_thread_id_x b in
  let v = var b S32 "v" in
  assign b v (ci 0);
  while_ b
    (fun () -> ige b ~$v (ci 0))
    (fun () -> assign b v (ci 1));
  st b out ~$gid ~$v;
  let kernel = finish b in
  let module E = Gpr_exec.Exec in
  let launch = launch_1d ~block:32 ~grid:1 in
  let data = [ ("out", E.I_data (Array.make 32 0)) ] in
  let bindings = E.bindings_for kernel ~data () in
  match
    E.run kernel ~launch ~params:[||] ~bindings
      { E.default_config with max_steps = Some 10_000 }
  with
  | _ -> Alcotest.fail "watchdog did not fire"
  | exception Failure msg ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "mentions the budget" true (contains msg "budget")

let test_exec_branch_budget () =
  (* Greedy shrinking can empty a loop body completely, leaving a cycle
     of blocks whose only work is the branch terminator.  Branches are
     not traced, but they must still drain the step budget or such a
     candidate spins forever. *)
  let b = Gpr_isa.Builder.create ~name:"spin_br" in
  let open Gpr_isa.Builder in
  let out = global_buffer b S32 "out" in
  let gid = global_thread_id_x b in
  let v = var b S32 "v" in
  assign b v (ci 0);
  while_ b
    (fun () -> ige b ~$v (ci 0))
    (fun () -> assign b v (ci 1));
  st b out ~$gid ~$v;
  let kernel = finish b in
  Array.iter
    (fun blk ->
       blk.instrs <- [||];
       match blk.term with
       | Cbr (_, t, _) -> blk.term <- Br t
       | _ -> ())
    kernel.k_blocks;
  let module E = Gpr_exec.Exec in
  let launch = launch_1d ~block:32 ~grid:1 in
  let data = [ ("out", E.I_data (Array.make 32 0)) ] in
  let bindings = E.bindings_for kernel ~data () in
  match
    E.run kernel ~launch ~params:[||] ~bindings
      { E.default_config with max_steps = Some 10_000 }
  with
  | _ -> Alcotest.fail "watchdog did not fire on a pure-branch loop"
  | exception Failure msg ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "mentions the budget" true (contains msg "budget")

(* Sharding the seed space over a domain pool must produce the same
   summary as the serial run — seeds are independent and results are
   collected in seed order. *)
let test_sharded_matches_serial () =
  let serial = Runner.run ~shrink:false ~seed:1 ~count:16 () in
  let sharded = Runner.run ~shrink:false ~seed:1 ~count:16 ~jobs:3 () in
  Alcotest.(check int) "same checked" serial.Runner.checked
    sharded.Runner.checked;
  Alcotest.(check (list string)) "same reports"
    (List.map Runner.report_to_string serial.Runner.reports)
    (List.map Runner.report_to_string sharded.Runner.reports)

let prop_random_seeds_clean =
  QCheck.Test.make ~name:"oracle clean on random seeds" ~count:25
    (QCheck.int_range 1000 1_000_000)
    (fun seed -> Runner.run_seed ~shrink:false seed = None)

let () =
  Alcotest.run "check"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "varies" `Quick test_generator_varies;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean seeds" `Quick test_clean_seeds;
          Alcotest.test_case "clean seeds (backend stages)" `Quick
            test_clean_seeds_backend_stages;
          Alcotest.test_case "catches bad ranges" `Quick test_catches_bad_ranges;
          Alcotest.test_case "catches bad widths" `Quick test_catches_bad_widths;
          Alcotest.test_case "step budget" `Quick test_exec_step_budget;
          Alcotest.test_case "step budget (pure-branch loop)" `Quick
            test_exec_branch_budget;
          Alcotest.test_case "sharded matches serial" `Quick
            test_sharded_matches_serial;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "shrinks counterexample" `Quick
            test_shrinks_counterexample;
          Alcotest.test_case "predicate minimum" `Quick
            test_shrink_to_predicate_minimum;
          Alcotest.test_case "copy isolates" `Quick test_copy_kernel_isolates;
        ] );
      ( "props",
        [
          QCheck_alcotest.to_alcotest prop_random_seeds_clean;
        ] );
    ]
