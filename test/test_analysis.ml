(* Tests for dominance, liveness, SSA/e-SSA and the range analysis.
   The centrepiece is the paper's Figure 8 worked example. *)

open Gpr_isa
open Gpr_isa.Types
module I = Gpr_util.Interval
module A = Gpr_analysis

let launch64 = launch_1d ~block:64 ~grid:4

(* Figure 8a/8b.  In the paper's e-SSA CFG the increment [k2 = kt + 1]
   reads the branch-filtered [kt] once per outer iteration (there is no
   inner-loop phi for k in Fig. 8b), so we place the increment in the
   outer loop body:
     k = 0
     while k < 50 {
       i = 0; j = k
       while i < j { print k; i = i + 1 }
       k = k + 1
     }
     print k
   "print" is modelled as a store to a global buffer. *)
let fig8_kernel () =
  let b = Builder.create ~name:"fig8" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let k = var b S32 "k" in
  let i = var b S32 "i" in
  let j = var b S32 "j" in
  assign b k (ci 0);
  while_ b
    (fun () -> ilt b ~$k (ci 50))
    (fun () ->
       assign b i (ci 0);
       assign b j ~$k;
       while_ b
         (fun () -> ilt b ~$i ~$j)
         (fun () ->
            st b out (ci 0) ~$k;
            assign b i ~$(iadd b ~$i (ci 1)));
       assign b k ~$(iadd b ~$k (ci 1)));
  st b out (ci 1) ~$k;
  (finish b, k, i, j)

let check_range t (v : vreg) lo hi name =
  let r = A.Range.var_range t v.id in
  Alcotest.(check string)
    name
    (I.to_string (I.of_ints lo hi))
    (I.to_string r)

let test_fig8_ranges () =
  let kernel, k, i, j = fig8_kernel () in
  let t = A.Range.analyze kernel ~launch:launch64 in
  (* Figure 8d: k ∈ [0,50], j ∈ [0,49].  The paper reports i ∈ [0,50]
     because Fig. 8b inserts no σ for i at the inner branch; our e-SSA
     also refines i (i_t ≤ j0 - 1 = 48), giving the tighter [0,49]. *)
  check_range t k 0 50 "I[k]";
  check_range t i 0 49 "I[i]";
  check_range t j 0 49 "I[j]";
  Alcotest.(check int) "bits k" 7 (A.Range.var_bitwidth t k.id);
  Alcotest.(check int) "bits j" 7 (A.Range.var_bitwidth t j.id)

(* Note: Fig. 8 reports 6 bits for values in [0,50] treating them as
   unsigned; our S32 variables include a sign bit, hence 7. A U32 loop
   gives exactly the paper's 6 bits: *)
let test_fig8_unsigned_bits () =
  let b = Builder.create ~name:"fig8u" in
  let open Builder in
  let out = global_buffer b U32 "out" in
  let k = var b U32 "k" in
  assign b k (ci 0);
  while_ b
    (fun () -> setp b Lt U32 ~$k (ci 50))
    (fun () ->
       st b out (ci 0) ~$k;
       assign b k ~$(iadd b ~ty:U32 ~$k (ci 1)));
  let kernel = finish b in
  let t = A.Range.analyze kernel ~launch:launch64 in
  Alcotest.(check string) "I[k]" "[0, 50]" (I.to_string (A.Range.var_range t k.id));
  Alcotest.(check int) "bits k unsigned" 6 (A.Range.var_bitwidth t k.id)

let test_tid_seeding () =
  let b = Builder.create ~name:"tid" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  let g = global_thread_id_x b in
  st b out ~$g ~$tid;
  let kernel = finish b in
  let t = A.Range.analyze kernel ~launch:(launch_1d ~block:256 ~grid:30) in
  Alcotest.(check string) "tid range" "[0, 255]"
    (I.to_string (A.Range.var_range t tid.id));
  (* gtid = ctaid * ntid + tid = [0, 29*256+255] = [0, 7679] *)
  Alcotest.(check string) "gtid range" "[0, 7679]"
    (I.to_string (A.Range.var_range t g.id));
  Alcotest.(check int) "gtid bits" 14 (A.Range.var_bitwidth t g.id)

let test_param_and_buffer_ranges () =
  let b = Builder.create ~name:"pb" in
  let open Builder in
  let img = global_buffer b S32 ~range:(0, 255) "img" in
  let out = global_buffer b S32 "out" in
  let n = param_i32 b ~range:(1, 1024) "n" in
  let x = ld b img (ci 0) in
  let y = imul b ~$x ~$n in
  st b out (ci 0) ~$y;
  let kernel = finish b in
  let t = A.Range.analyze kernel ~launch:launch64 in
  Alcotest.(check string) "img load" "[0, 255]"
    (I.to_string (A.Range.var_range t x.id));
  Alcotest.(check string) "x*n" "[0, 261120]"
    (I.to_string (A.Range.var_range t y.id))

let test_selp_join () =
  let b = Builder.create ~name:"selp" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let p = ilt b (ci 1) (ci 2) in
  let v = selp b S32 (ci (-5)) (ci 100) p in
  st b out (ci 0) ~$v;
  let kernel = finish b in
  let t = A.Range.analyze kernel ~launch:launch64 in
  Alcotest.(check string) "selp join" "[-5, 100]"
    (I.to_string (A.Range.var_range t v.id));
  Alcotest.(check int) "selp bits" 8 (A.Range.var_bitwidth t v.id)

let test_if_refinement () =
  (* if (x < 10) y = x else y = 0  =>  y ∈ [0, 9] given x ∈ [0, 255] *)
  let b = Builder.create ~name:"refine" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let x = param_i32 b ~range:(0, 255) "x" in
  let y = var b S32 "y" in
  let p = ilt b ~$x (ci 10) in
  if_ b p (fun () -> assign b y ~$x) (fun () -> assign b y (ci 0));
  st b out (ci 0) ~$y;
  let kernel = finish b in
  let t = A.Range.analyze kernel ~launch:launch64 in
  Alcotest.(check string) "refined y" "[0, 9]"
    (I.to_string (A.Range.var_range t y.id))

let test_clamp_pattern () =
  (* idx = min(max(ftoi f, 0), 63): conversion is unbounded but the
     clamp recovers a narrow range — the idiom our image kernels use. *)
  let b = Builder.create ~name:"clamp" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let f = param_f32 b "f" in
  let raw = ftoi b ~$f in
  let lo = imax b ~$raw (ci 0) in
  let idx = imin b ~$lo (ci 63) in
  st b out ~$idx (ci 1);
  let kernel = finish b in
  let t = A.Range.analyze kernel ~launch:launch64 in
  Alcotest.(check string) "clamped" "[0, 63]"
    (I.to_string (A.Range.var_range t idx.id));
  Alcotest.(check int) "clamped bits" 7 (A.Range.var_bitwidth t idx.id)

(* --------------------------------------------------------------- *)
(* Dominance *)

let diamond_kernel () =
  let b = Builder.create ~name:"diamond" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let p = ilt b (ci 0) (ci 1) in
  if_ b p
    (fun () -> st b out (ci 0) (ci 1))
    (fun () -> st b out (ci 0) (ci 2));
  st b out (ci 1) (ci 3);
  finish b

let test_dominance_diamond () =
  let kernel = diamond_kernel () in
  let cfg = Cfg.of_kernel kernel in
  let dom = A.Dominance.compute cfg in
  (* blocks: 0 entry, 1 then, 2 else, 3 join *)
  Alcotest.(check (option int)) "idom then" (Some 0) (A.Dominance.idom dom 1);
  Alcotest.(check (option int)) "idom else" (Some 0) (A.Dominance.idom dom 2);
  Alcotest.(check (option int)) "idom join" (Some 0) (A.Dominance.idom dom 3);
  Alcotest.(check bool) "0 dom 3" true (A.Dominance.dominates dom 0 3);
  Alcotest.(check bool) "1 !dom 3" false (A.Dominance.dominates dom 1 3);
  Alcotest.(check bool) "df of 1" true
    (List.mem 3 (A.Dominance.dominance_frontier dom 1))

let test_ipdom_diamond () =
  let kernel = diamond_kernel () in
  let cfg = Cfg.of_kernel kernel in
  let post = A.Dominance.compute_post cfg in
  Alcotest.(check (option int)) "ipdom entry" (Some 3) (A.Dominance.ipdom post 0);
  Alcotest.(check (option int)) "ipdom then" (Some 3) (A.Dominance.ipdom post 1);
  Alcotest.(check (option int)) "ipdom else" (Some 3) (A.Dominance.ipdom post 2)

let test_ipdom_loop () =
  let kernel, _, _, _ = fig8_kernel () in
  let cfg = Cfg.of_kernel kernel in
  let post = A.Dominance.compute_post cfg in
  (* Every block's IPDOM chain must reach the (single) Ret block. *)
  let rets = Cfg.exit_blocks cfg in
  Alcotest.(check int) "one exit" 1 (List.length rets);
  let ret = List.hd rets in
  let rec reaches b depth =
    if depth > 64 then false
    else if b = ret then true
    else match A.Dominance.ipdom post b with
      | Some nxt -> reaches nxt (depth + 1)
      | None -> false
  in
  for b = 0 to Cfg.num_blocks cfg - 1 do
    Alcotest.(check bool) (Printf.sprintf "block %d reaches exit" b) true
      (reaches b 0)
  done

(* --------------------------------------------------------------- *)
(* Liveness *)

let test_liveness_basic () =
  let b = Builder.create ~name:"live" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let a = mov b S32 (ci 1) in
  let c = mov b S32 (ci 2) in
  let d = iadd b ~$a ~$c in
  st b out (ci 0) ~$d;
  let kernel = finish b in
  let live = A.Liveness.compute kernel in
  (* Straight-line kernel: nothing live at exit. *)
  Alcotest.(check int) "live-out empty" 0
    (A.Liveness.Iset.cardinal (A.Liveness.live_out live 0));
  Alcotest.(check bool) "pressure >= 2" true (A.Liveness.max_live live >= 2)

let test_liveness_loop_carried () =
  let kernel, k, _, _ = fig8_kernel () in
  let live = A.Liveness.compute kernel in
  (* k is live across the outer loop: it must appear in some block's
     live-in set other than entry. *)
  let cfg = Cfg.of_kernel kernel in
  let found = ref false in
  for bl = 1 to Cfg.num_blocks cfg - 1 do
    if A.Liveness.Iset.mem k.id (A.Liveness.live_in live bl) then found := true
  done;
  Alcotest.(check bool) "k live in loop" true !found

let test_intervals_cover_defs () =
  let kernel, _, _, _ = fig8_kernel () in
  let live = A.Liveness.compute kernel in
  let ivs = A.Liveness.intervals live in
  List.iter
    (fun (_, lo, hi) ->
       Alcotest.(check bool) "interval nonempty" true (lo < hi))
    ivs

(* --------------------------------------------------------------- *)
(* SSA structural properties *)

let test_ssa_single_def () =
  let kernel, _, _, _ = fig8_kernel () in
  let ssa = A.Ssa.convert kernel in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun blk ->
       Array.iter
         (fun ins ->
            match defs ins with
            | Some d ->
              Alcotest.(check bool)
                (Printf.sprintf "single def of %%%d" d.id)
                false (Hashtbl.mem seen d.id);
              Hashtbl.replace seen d.id ()
            | None -> ())
         blk.instrs)
    ssa.A.Ssa.kernel.k_blocks

let test_ssa_phi_operand_count () =
  let kernel, _, _, _ = fig8_kernel () in
  let ssa = A.Ssa.convert kernel in
  let cfg = Cfg.of_kernel ssa.A.Ssa.kernel in
  Array.iter
    (fun blk ->
       let npreds = List.length (Cfg.preds cfg blk.label) in
       Array.iter
         (fun ins ->
            match ins with
            | Phi (_, ops) ->
              Alcotest.(check int)
                (Printf.sprintf "phi arity in block %d" blk.label)
                npreds (List.length ops)
            | _ -> ())
         blk.instrs)
    ssa.A.Ssa.kernel.k_blocks

let test_essa_has_pis () =
  let kernel, _, _, _ = fig8_kernel () in
  let essa = A.Essa.convert (A.Ssa.convert kernel) in
  let pis = ref 0 in
  Array.iter
    (fun blk ->
       Array.iter
         (fun ins -> match ins with Pi _ -> incr pis | _ -> ())
         blk.instrs)
    essa.A.Ssa.kernel.k_blocks;
  (* Two conditional branches, each with refinable integer operands on
     both sides. *)
  Alcotest.(check bool) "pi nodes inserted" true (!pis >= 4)

(* Property: CHK dominators agree with brute-force dominance (b is
   dominated by a iff removing a makes b unreachable from entry) on
   random CFGs.  The generator lives in {!Gpr_check.Gen}, shared with
   the differential fuzzer. *)
let random_cfg_kernel = Gpr_check.Gen.random_cfg_kernel

let reachable_without kernel ~removed =
  let n = Array.length kernel.k_blocks in
  let seen = Array.make n false in
  let rec dfs b =
    if b <> removed && not seen.(b) then begin
      seen.(b) <- true;
      List.iter dfs (successors kernel.k_blocks.(b).term)
    end
  in
  if removed <> 0 then dfs 0;
  seen

let prop_dominance_brute_force =
  QCheck.Test.make ~name:"CHK dominators = brute force" ~count:120
    QCheck.(pair (int_range 2 10) (int_range 1 1_000_000))
    (fun (n, seed) ->
       let rng = Gpr_util.Rng.create seed in
       let kernel = random_cfg_kernel rng n in
       let cfg = Cfg.of_kernel kernel in
       let dom = A.Dominance.compute cfg in
       let reach = reachable_without kernel ~removed:(-1) in
       let ok = ref true in
       for a = 0 to n - 1 do
         let without_a = reachable_without kernel ~removed:a in
         for b = 0 to n - 1 do
           if reach.(a) && reach.(b) then begin
             let brute = a = b || not without_a.(b) in
             if A.Dominance.dominates dom a b <> brute then ok := false
           end
         done
       done;
       !ok)

(* Property: the range analysis is sound — every value a register
   actually takes during execution lies inside its computed range.
   Random straight-line kernels over gid with growth-bounded operators
   (so 32-bit wrap-around, which the analysis deliberately does not
   model, cannot occur). *)
let prop_ranges_sound =
  QCheck.Test.make ~name:"range analysis sound vs execution" ~count:60
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
       let rng = Gpr_util.Rng.create seed in
       let n_nodes = 10 in
       let kernel, tracked =
         Gpr_check.Gen.random_straightline rng ~n_nodes
       in
       let nthreads = 64 in
       let launch = launch_1d ~block:32 ~grid:2 in
       let t = A.Range.analyze kernel ~launch in
       let outd = Array.make (nthreads * n_nodes) 0 in
       let module E = Gpr_exec.Exec in
       let bindings =
         E.bindings_for kernel ~data:[ ("out", E.I_data outd) ] ()
       in
       ignore (E.run kernel ~launch ~params:[||] ~bindings E.default_config);
       List.for_all
         (fun ((v : vreg), slot) ->
            let range = A.Range.var_range t v.id in
            let ok = ref true in
            for th = 0 to nthreads - 1 do
              if not (I.contains range outd.((th * n_nodes) + slot)) then
                ok := false
            done;
            !ok)
         tracked)

(* --------------------------------------------------------------- *)
(* Bit-precise domains: known-bits and congruence transfer functions
   must over-approximate the executor's concrete integer semantics
   (wrap to 32 bits, shift amounts masked to 5 bits, Div-by-0 -> 0,
   Rem-by-0 -> x), and the reduced product must dominate the interval
   widths on every registry kernel — strictly, on at least three. *)

module KB = A.Knownbits
module CG = A.Congruence

let wrap_u32 x = x land 0xffff_ffff

let wrap_s32 x =
  let m = x land 0xffff_ffff in
  if m >= 0x8000_0000 then m - 0x1_0000_0000 else m

(* The executor's integer semantics (Exec.exec_instr, Ibin/Iun/Imad),
   restated for operands already stored at dtype [ty]. *)
let conc_binop ty op x y =
  let wrap = if ty = U32 then wrap_u32 else wrap_s32 in
  wrap
    (match op with
    | Add -> x + y
    | Sub -> x - y
    | Mul -> x * y
    | Div -> if y = 0 then 0 else x / y
    | Rem -> if y = 0 then x else x mod y
    | Min -> min x y
    | Max -> max x y
    | And -> x land y
    | Or -> x lor y
    | Xor -> x lxor y
    | Shl -> x lsl (y land 31)
    | Shr -> if ty = U32 then wrap_u32 x lsr (y land 31) else x asr (y land 31))

let conc_unop ty op x =
  let wrap = if ty = U32 then wrap_u32 else wrap_s32 in
  wrap (match op with Ineg -> -x | Inot -> lnot x | Iabs -> abs x)

let conc_mad ty x y z =
  let wrap = if ty = U32 then wrap_u32 else wrap_s32 in
  wrap ((x * y) + z)

let all_ibinops =
  [ Add; Sub; Mul; Div; Rem; Min; Max; And; Or; Xor; Shl; Shr ]

let all_iunops = [ Ineg; Inot; Iabs ]

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | Min -> "min" | Max -> "max" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr -> "shr"

(* A random abstract value guaranteed to contain the concrete [x]. *)
let kb_containing rng x =
  let m = Gpr_util.Rng.int rng 0x1_0000_0000 in
  KB.Kb { ones = x land lnot m land 0xffff_ffff; unk = m }

let cg_containing rng x =
  let k = Gpr_util.Rng.int rng 32 in
  if k = 0 then CG.top
  else CG.Cg { k; r = wrap_u32 x land ((1 lsl k) - 1) }

let stored rng ty =
  let wrap = if ty = U32 then wrap_u32 else wrap_s32 in
  (* bias toward small magnitudes so shifts/masks see realistic amounts *)
  let raw =
    match Gpr_util.Rng.int rng 3 with
    | 0 -> Gpr_util.Rng.int rng 64 - 8
    | 1 -> Gpr_util.Rng.int rng 0x1_0000
    | _ -> Gpr_util.Rng.int rng 0x1_0000_0000 - 0x8000_0000
  in
  wrap raw

let prop_knownbits_sound =
  QCheck.Test.make ~name:"known-bits transfer sound vs concrete" ~count:300
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let rng = Gpr_util.Rng.create seed in
      let ty = if Gpr_util.Rng.int rng 2 = 0 then S32 else U32 in
      let x = stored rng ty and y = stored rng ty and z = stored rng ty in
      let ax = kb_containing rng x
      and ay = kb_containing rng y
      and az = kb_containing rng z in
      List.iter
        (fun op ->
          let c = conc_binop ty op x y in
          let a = KB.binop ty op ax ay in
          if not (KB.mem c a) then
            QCheck.Test.fail_reportf
              "kb %s %s: %d op %d = %d escapes %s (from %s, %s)"
              (if ty = U32 then "u32" else "s32")
              (binop_name op) x y c (KB.to_string a) (KB.to_string ax)
              (KB.to_string ay))
        all_ibinops;
      List.iter
        (fun op ->
          let c = conc_unop ty op x in
          let a = KB.unop ty op ax in
          if not (KB.mem c a) then
            QCheck.Test.fail_reportf "kb unop: %d -> %d escapes %s" x c
              (KB.to_string a))
        all_iunops;
      let c = conc_mad ty x y z in
      let a = KB.mad ax ay az in
      if not (KB.mem c a) then
        QCheck.Test.fail_reportf "kb mad: %d,%d,%d -> %d escapes %s" x y z c
          (KB.to_string a);
      true)

let prop_congruence_sound =
  QCheck.Test.make ~name:"congruence transfer sound vs concrete" ~count:300
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let rng = Gpr_util.Rng.create seed in
      let ty = if Gpr_util.Rng.int rng 2 = 0 then S32 else U32 in
      let x = stored rng ty and y = stored rng ty and z = stored rng ty in
      let ax = cg_containing rng x
      and ay = cg_containing rng y
      and az = cg_containing rng z in
      List.iter
        (fun op ->
          let c = conc_binop ty op x y in
          let a = CG.binop ty op ax ay in
          if not (CG.mem c a) then
            QCheck.Test.fail_reportf
              "cg %s %s: %d op %d = %d escapes %s (from %s, %s)"
              (if ty = U32 then "u32" else "s32")
              (binop_name op) x y c (CG.to_string a) (CG.to_string ax)
              (CG.to_string ay))
        all_ibinops;
      List.iter
        (fun op ->
          let c = conc_unop ty op x in
          let a = CG.unop ty op ax in
          if not (CG.mem c a) then
            QCheck.Test.fail_reportf "cg unop: %d -> %d escapes %s" x c
              (CG.to_string a))
        all_iunops;
      let c = conc_mad ty x y z in
      let a = CG.mad ax ay az in
      if not (CG.mem c a) then
        QCheck.Test.fail_reportf "cg mad: %d,%d,%d -> %d escapes %s" x y z c
          (CG.to_string a);
      true)

(* Dominance: on every registry kernel the product width never exceeds
   the interval width, for any variable. *)
let test_registry_dominance () =
  List.iter
    (fun (w : Gpr_workloads.Workload.t) ->
      let wt = A.Width.analyze w.kernel ~launch:w.launch in
      Array.iteri
        (fun id _ ->
          let p = A.Width.var_bitwidth wt id in
          let iv = A.Width.interval_bitwidth wt id in
          if p > iv then
            Alcotest.failf "%s: %%%d product %d > interval %d" w.name id p iv)
        wt.A.Width.var_bits)
    Gpr_workloads.Registry.all

(* The product must actually buy something: strictly more narrow
   integer variables than intervals alone on at least three registry
   kernels (the acceptance bar of the width framework), including the
   three kernels whose integer idioms — lattice hashes, packed
   G-buffer material words — were chosen to defeat plain intervals. *)
let test_registry_strictly_narrower () =
  let improved =
    List.filter
      (fun (w : Gpr_workloads.Workload.t) ->
        let wt = A.Width.analyze w.kernel ~launch:w.launch in
        A.Width.narrow_int_count wt w.kernel
        > A.Width.interval_narrow_int_count wt w.kernel)
      Gpr_workloads.Registry.all
  in
  let names = List.map (fun (w : Gpr_workloads.Workload.t) -> w.name) improved in
  Alcotest.(check bool)
    (Printf.sprintf ">= 3 kernels strictly narrower (got: %s)"
       (String.concat " " names))
    true
    (List.length improved >= 3);
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (expected ^ " strictly narrower")
        true (List.mem expected names))
    [ "Deferred"; "Elevated"; "Pathtracer" ]

(* A value that is written but never read demands 0 bits; its storage
   width collapses to the 1-bit floor even though its interval needs
   more. *)
let test_dead_var_width_one () =
  let b = Builder.create ~name:"deadvar" in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let tid = tid_x b in
  let x = var b S32 "x" in
  assign b x (ci 12345);
  st b out ~$tid ~$tid;
  let kernel = finish b in
  let wt = A.Width.analyze kernel ~launch:(launch_1d ~block:32 ~grid:1) in
  Alcotest.(check int) "demanded 0" 0 (A.Width.demanded_width wt x.id);
  Alcotest.(check bool) "interval needs > 1 bit" true
    (A.Width.interval_bitwidth wt x.id > 1);
  Alcotest.(check int) "product width 1" 1 (A.Width.var_bitwidth wt x.id)

let () =
  Alcotest.run "analysis"
    [
      ( "range",
        [
          Alcotest.test_case "fig8 ranges" `Quick test_fig8_ranges;
          Alcotest.test_case "fig8 unsigned bits" `Quick test_fig8_unsigned_bits;
          Alcotest.test_case "tid seeding" `Quick test_tid_seeding;
          Alcotest.test_case "param/buffer ranges" `Quick
            test_param_and_buffer_ranges;
          Alcotest.test_case "selp join" `Quick test_selp_join;
          Alcotest.test_case "if refinement" `Quick test_if_refinement;
          Alcotest.test_case "clamp after cvt" `Quick test_clamp_pattern;
        ] );
      ( "dominance",
        [
          Alcotest.test_case "diamond" `Quick test_dominance_diamond;
          Alcotest.test_case "ipdom diamond" `Quick test_ipdom_diamond;
          Alcotest.test_case "ipdom loop" `Quick test_ipdom_loop;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "basic" `Quick test_liveness_basic;
          Alcotest.test_case "loop carried" `Quick test_liveness_loop_carried;
          Alcotest.test_case "interval sanity" `Quick test_intervals_cover_defs;
        ] );
      ( "ssa",
        [
          Alcotest.test_case "single def" `Quick test_ssa_single_def;
          Alcotest.test_case "phi arity" `Quick test_ssa_phi_operand_count;
          Alcotest.test_case "essa pis" `Quick test_essa_has_pis;
        ] );
      ( "dominance-props",
        [ QCheck_alcotest.to_alcotest ~verbose:false prop_dominance_brute_force ] );
      ( "range-props",
        [ QCheck_alcotest.to_alcotest ~verbose:false prop_ranges_sound ] );
      ( "width",
        [
          Alcotest.test_case "registry dominance" `Quick
            test_registry_dominance;
          Alcotest.test_case "registry strictly narrower" `Quick
            test_registry_strictly_narrower;
          Alcotest.test_case "dead var width 1" `Quick
            test_dead_var_width_one;
        ] );
      ( "domain-props",
        [
          QCheck_alcotest.to_alcotest ~verbose:false prop_knownbits_sound;
          QCheck_alcotest.to_alcotest ~verbose:false prop_congruence_sound;
        ] );
    ]
