(* Fault model and injection campaign: seeded placement determinism and
   prefix stability, fault-free runs byte-identical to the plain
   simulator, flat-vs-reference agreement under faults, the RRCD
   redirection safety property (never placed on a faulty slice, dead
   entry or dead bank), and campaign determinism. *)

open Gpr_isa.Types
module T = Gpr_exec.Trace
module Sim = Gpr_sim.Sim
module Sim_ref = Gpr_sim.Sim_ref
module A = Gpr_alloc.Alloc
module Fault = Gpr_regfile.Fault
module Rrcd = Gpr_backend.Backend_rrcd

let cfg = Gpr_arch.Config.fermi_gtx480
let banks = cfg.register_banks

(* ---------------------------------------------------------------- *)
(* Seeded placement *)

let test_place_deterministic () =
  let a = Fault.place ~seed:7 ~count:10 ~banks ~regs:16 in
  let b = Fault.place ~seed:7 ~count:10 ~banks ~regs:16 in
  Alcotest.(check bool) "same seed, same stream" true (a = b);
  let c = Fault.place ~seed:8 ~count:10 ~banks ~regs:16 in
  Alcotest.(check bool) "different seed, different stream" true (a <> c);
  Alcotest.(check int) "count respected" 10 (List.length a);
  Alcotest.(check int) "distinct faults" 10
    (List.length (List.sort_uniq compare a))

let test_place_prefix_stable () =
  let full = Fault.place ~seed:3 ~count:12 ~banks ~regs:16 in
  for k = 0 to 12 do
    let p = Fault.place ~seed:3 ~count:k ~banks ~regs:16 in
    Alcotest.(check bool)
      (Printf.sprintf "count %d is a prefix of count 12" k)
      true
      (p = List.filteri (fun i _ -> i < k) full)
  done

(* ---------------------------------------------------------------- *)
(* Timing model: no-fault runs are byte-identical; faulted runs agree
   with the reference engine. *)

let item ?(warp = 0) ?(srcs = []) ?dst pc =
  {
    T.t_warp = warp;
    t_block_id = 0;
    t_pc = pc;
    t_unit = Spu;
    t_srcs = srcs;
    t_dst = dst;
    t_dst_float = false;
    t_active = 32;
    t_mem = None;
  }

let mk_trace ?(warps_per_block = 2) items =
  {
    T.items = Array.of_list items;
    warps_per_block;
    num_blocks = 1;
    thread_instructions =
      List.fold_left (fun a (i : T.item) -> a + i.t_active) 0 items;
  }

let full_alloc n =
  let placements = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    Hashtbl.replace placements v
      { A.reg0 = v; mask0 = 0xff; reg1 = -1; mask1 = 0; slices = 8; bits = 32;
        signed = true; is_float = false }
  done;
  { A.pressure = n; placements; num_arch_regs = n; peak_slices = n * 8;
    split_count = 0 }

let trace =
  let w warp =
    List.init 12 (fun i ->
        item ~warp ~srcs:(if i = 0 then [] else [ (i - 1) mod 8 ]) ~dst:(i mod 8) i)
  in
  mk_trace (w 0 @ w 1)

let test_no_faults_identical () =
  List.iter
    (fun mode ->
      let plain =
        Sim.run cfg ~trace ~alloc:(full_alloc 8) ~blocks_per_sm:2 ~mode
      in
      let empty =
        Sim.run ~faults:[] cfg ~trace ~alloc:(full_alloc 8) ~blocks_per_sm:2
          ~mode
      in
      Alcotest.(check bool) "~faults:[] is the identity" true (plain = empty))
    [ Sim.Baseline; Sim.Proposed { writeback_delay = 3 } ]

let test_faulted_engines_agree () =
  (* A dead bank redirects its traffic in both engines; the flat and
     reference models must keep producing identical stats. *)
  List.iter
    (fun faults ->
      let run (f : ?check:bool -> ?waves:int -> ?faults:Fault.t list ->
                ?profile:Gpr_obs.Chrome.t -> Gpr_arch.Config.t ->
                trace:T.t -> alloc:A.t -> blocks_per_sm:int ->
                mode:Sim.regfile_mode -> Sim.stats) =
        f ~check:true ~faults cfg ~trace ~alloc:(full_alloc 8)
          ~blocks_per_sm:2 ~mode:Sim.Baseline
      in
      let flat = run Sim.run and reference = run Sim_ref.run in
      Alcotest.(check bool) "flat = reference under faults" true
        (flat = reference))
    [
      [ Fault.Dead_bank 0 ];
      [ Fault.Dead_bank 3; Fault.Dead_bank 5 ];
      Fault.place ~seed:11 ~count:6 ~banks ~regs:16;
    ]

(* ---------------------------------------------------------------- *)
(* RRCD redirection safety *)

let hotspot = Option.get (Gpr_workloads.Registry.by_name "Hotspot")

let hotspot_alloc =
  lazy
    (let width =
       Gpr_analysis.Width.analyze hotspot.kernel ~launch:hotspot.launch
     in
     Rrcd.slice_alloc ~kernel:hotspot.kernel ~width ~precision:None)

let prop_rrcd_avoids_faulty_slices =
  QCheck.Test.make ~name:"rrcd never places on a faulty slice/entry/bank"
    ~count:200
    QCheck.(pair small_int (int_range 0 24))
    (fun (seed, count) ->
      let faults = Fault.place ~seed ~count ~banks ~regs:64 in
      let alloc = Lazy.force hotspot_alloc in
      let alloc', ok = Rrcd.redirect alloc ~banks ~faults in
      if not ok then QCheck.assume_fail ()
      else begin
        let c = Fault.compile ~banks ~regs:64 faults in
        Hashtbl.iter
          (fun v (p : A.placement) ->
            let clean reg mask = mask land Fault.bad_slices c reg = 0 in
            if not (clean p.reg0 p.mask0) then
              QCheck.Test.fail_reportf
                "v%d placed on faulty slices of r%d (mask %#x, bad %#x)" v
                p.reg0 p.mask0
                (Fault.bad_slices c p.reg0);
            if p.reg1 >= 0 && not (clean p.reg1 p.mask1) then
              QCheck.Test.fail_reportf
                "v%d split onto faulty slices of r%d" v p.reg1;
            (* Dead banks are fully bad-sliced, but assert directly too. *)
            if Fault.dead_bank c (p.reg0 mod banks)
               || (p.reg1 >= 0 && Fault.dead_bank c (p.reg1 mod banks))
            then QCheck.Test.fail_reportf "v%d placed on a dead bank" v)
          alloc'.A.placements;
        (* The redirection preserves each variable's storage shape. *)
        Hashtbl.iter
          (fun v (p : A.placement) ->
            let q = Hashtbl.find alloc'.A.placements v in
            if q.A.slices <> p.A.slices || q.A.bits <> p.A.bits then
              QCheck.Test.fail_reportf "v%d changed width in redirection" v)
          alloc.A.placements;
        true
      end)

let test_rrcd_empty_faults_identity () =
  let alloc = Lazy.force hotspot_alloc in
  let alloc', ok = Rrcd.redirect alloc ~banks ~faults:[] in
  Alcotest.(check bool) "no faults: placeable" true ok;
  Alcotest.(check bool) "no faults: allocation untouched" true (alloc' == alloc)

(* ---------------------------------------------------------------- *)
(* Campaign *)

let test_campaign_deterministic_and_ordered () =
  let run name =
    Gpr_check.Faults.run_scheme ~seed:1 ~cases:4 ~max_faults:4 ~banks name
  in
  let s1 = run "slice" and s2 = run "slice" in
  Alcotest.(check bool) "campaign is deterministic" true (s1 = s2);
  let base = run "baseline" and rrcd = run "rrcd" in
  Alcotest.(check bool) "rrcd absorbs at least as much as slice" true
    (rrcd.Gpr_check.Faults.fr_absorbed_mean
    >= s1.Gpr_check.Faults.fr_absorbed_mean);
  Alcotest.(check bool) "slice absorbs at least as much as baseline" true
    (s1.Gpr_check.Faults.fr_absorbed_mean
    >= base.Gpr_check.Faults.fr_absorbed_mean)

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)
  in
  Alcotest.run "faults"
    [
      ( "place",
        [
          Alcotest.test_case "deterministic" `Quick test_place_deterministic;
          Alcotest.test_case "prefix-stable" `Quick test_place_prefix_stable;
        ] );
      ( "sim",
        [
          Alcotest.test_case "no faults is identity" `Quick
            test_no_faults_identical;
          Alcotest.test_case "engines agree under faults" `Quick
            test_faulted_engines_agree;
        ] );
      ( "rrcd",
        [
          Alcotest.test_case "empty faults identity" `Quick
            test_rrcd_empty_faults_identity;
        ] );
      qsuite "rrcd-props" [ prop_rrcd_avoids_faulty_slices ];
      ( "campaign",
        [
          Alcotest.test_case "deterministic + ordered" `Quick
            test_campaign_deterministic_and_ordered;
        ] );
    ]
