(* Timing-simulator tests: latency hiding, scoreboard serialisation,
   writeback-delay sensitivity, barrier progress, cache model, and the
   proposed-path overheads (conversions, double fetches). *)

open Gpr_isa
open Gpr_isa.Types
module E = Gpr_exec.Exec
module T = Gpr_exec.Trace
module Sim = Gpr_sim.Sim
module A = Gpr_alloc.Alloc

let cfg = Gpr_arch.Config.fermi_gtx480

(* ---------------------------------------------------------------- *)
(* Synthetic traces *)

let item ?(warp = 0) ?(block = 0) ?(unit_ = Spu) ?(srcs = []) ?dst
    ?(dst_float = false) ?mem pc =
  {
    T.t_warp = warp;
    t_block_id = block;
    t_pc = pc;
    t_unit = unit_;
    t_srcs = srcs;
    t_dst = dst;
    t_dst_float = dst_float;
    t_active = 32;
    t_mem = mem;
  }

let mk_trace ?(warps_per_block = 1) ?(num_blocks = 1) items =
  {
    T.items = Array.of_list items;
    warps_per_block;
    num_blocks;
    thread_instructions = List.fold_left (fun a (i : T.item) -> a + i.t_active) 0 items;
  }

(* An allocation covering registers 0..n-1 at full width. *)
let full_alloc n =
  let placements = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    Hashtbl.replace placements v
      { A.reg0 = v; mask0 = 0xff; reg1 = -1; mask1 = 0; slices = 8; bits = 32;
        signed = true; is_float = false }
  done;
  { A.pressure = n; placements; num_arch_regs = n; peak_slices = n * 8;
    split_count = 0 }

let run ?(waves = 1) ?(blocks = 1) ?(mode = Sim.Baseline) ?alloc trace =
  let alloc = match alloc with Some a -> a | None -> full_alloc 64 in
  Sim.run ~waves cfg ~trace ~alloc ~blocks_per_sm:blocks ~mode

let test_dependent_chain_serialises () =
  (* r(i+1) depends on r(i): each instruction waits for the previous
     writeback; cycles must scale with the chain length. *)
  let n = 32 in
  let chain =
    List.init n (fun i ->
        item ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i i)
  in
  let dep = run (mk_trace chain) in
  let indep = List.init n (fun i -> item ~dst:i i) in
  let ind = run (mk_trace indep) in
  Alcotest.(check bool) "dependency costs cycles" true
    (dep.Sim.cycles > ind.Sim.cycles + (n * (cfg.spu_latency - 1)) / 2);
  Alcotest.(check int) "same work" dep.Sim.warp_instructions
    ind.Sim.warp_instructions

let test_more_warps_hide_latency () =
  (* The same dependent chain in many warps: IPC should rise with the
     number of resident warps. *)
  let chain w =
    List.init 24 (fun i ->
        item ~warp:w ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i i)
  in
  let one = run (mk_trace (chain 0)) in
  let eight =
    run
      (mk_trace ~warps_per_block:8
         (List.concat_map chain (List.init 8 Fun.id)))
  in
  Alcotest.(check bool) "8 warps faster per instr" true
    (eight.Sim.sm_ipc > 3.0 *. one.Sim.sm_ipc)

let test_writeback_delay_monotone () =
  let chain =
    List.init 24 (fun i ->
        item ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i i)
  in
  let trace = mk_trace chain in
  let cycles d =
    (run ~mode:(Sim.Proposed { writeback_delay = d }) trace).Sim.cycles
  in
  let cs = List.map cycles [ 0; 2; 4; 8 ] in
  let rec nondecr = function
    | a :: (b :: _ as r) -> a <= b && nondecr r
    | _ -> true
  in
  Alcotest.(check bool) "monotone in writeback delay" true (nondecr cs);
  Alcotest.(check bool) "strictly grows overall" true
    (List.nth cs 3 > List.hd cs)

let test_proposed_overhead_at_same_occupancy () =
  let chain =
    List.init 32 (fun i ->
        item ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i i)
  in
  let trace = mk_trace chain in
  let b = run trace in
  let p = run ~mode:(Sim.Proposed { writeback_delay = 3 }) trace in
  Alcotest.(check bool) "proposed not faster at equal occupancy" true
    (p.Sim.cycles >= b.Sim.cycles)

let test_conversions_counted () =
  (* Narrow float sources must pass through the value converter. *)
  let placements = Hashtbl.create 4 in
  Hashtbl.replace placements 0
    { A.reg0 = 0; mask0 = 0xf; reg1 = -1; mask1 = 0; slices = 4; bits = 16;
      signed = false; is_float = true };
  let alloc =
    { A.pressure = 1; placements; num_arch_regs = 1; peak_slices = 4;
      split_count = 0 }
  in
  let items = List.init 6 (fun i -> item ~srcs:[ 0 ] i) in
  let s =
    run ~alloc ~mode:(Sim.Proposed { writeback_delay = 3 })
      (mk_trace (item ~dst:0 99 :: items))
  in
  Alcotest.(check int) "six conversions" 6 s.Sim.conversions;
  let sbase = run ~alloc (mk_trace (item ~dst:0 99 :: items)) in
  Alcotest.(check int) "baseline never converts" 0 sbase.Sim.conversions

let test_double_fetch_counted () =
  let placements = Hashtbl.create 4 in
  Hashtbl.replace placements 0
    { A.reg0 = 0; mask0 = 0x3; reg1 = 1; mask1 = 0x3; slices = 4; bits = 16;
      signed = true; is_float = false };
  let alloc =
    { A.pressure = 2; placements; num_arch_regs = 1; peak_slices = 4;
      split_count = 1 }
  in
  let items = List.init 4 (fun i -> item ~srcs:[ 0 ] i) in
  let s =
    run ~alloc ~mode:(Sim.Proposed { writeback_delay = 3 })
      (mk_trace (item ~dst:0 99 :: items))
  in
  Alcotest.(check int) "double fetches" 4 s.Sim.double_fetches;
  let sb = run ~alloc (mk_trace (item ~dst:0 99 :: items)) in
  Alcotest.(check int) "baseline single fetch" 0 sb.Sim.double_fetches

let test_barrier_completes () =
  (* Two warps with interleaved barriers must make progress. *)
  let w warp =
    [ item ~warp ~dst:0 0; item ~warp ~unit_:Sync 1; item ~warp ~dst:1 2;
      item ~warp ~unit_:Sync 3; item ~warp ~dst:2 4 ]
  in
  let s = run (mk_trace ~warps_per_block:2 (w 0 @ w 1)) in
  Alcotest.(check int) "all issued" 10 s.Sim.warp_instructions;
  Alcotest.(check bool) "finished quickly" true (s.Sim.cycles < 10_000)

let test_waves_scale_work () =
  let items = List.init 16 (fun i -> item ~dst:i i) in
  let one = run ~waves:1 (mk_trace items) in
  let four = run ~waves:4 (mk_trace items) in
  Alcotest.(check int) "4x thread instructions"
    (4 * one.Sim.thread_instructions) four.Sim.thread_instructions

let test_memory_latency_and_caches () =
  (* Same address repeatedly: first access misses, later ones hit. *)
  let mem = { T.m_space = Global; m_addresses = Array.init 32 (fun l -> l * 4) } in
  let loads = List.init 8 (fun i -> item ~dst:i ~unit_:Ldst ~mem i) in
  let s = run (mk_trace loads) in
  Alcotest.(check bool) "l1 mostly hits after warmup" true
    (s.Sim.l1_hit_rate > 0.8);
  (* Scattered addresses (one line per lane) serialise the LD/ST unit. *)
  let scat = { T.m_space = Global; m_addresses = Array.init 32 (fun l -> l * 128) } in
  let sloads = List.init 8 (fun i -> item ~dst:i ~unit_:Ldst ~mem:scat i) in
  let s2 = run (mk_trace sloads) in
  Alcotest.(check bool) "scatter slower than coalesced" true
    (s2.Sim.cycles > s.Sim.cycles)

let test_texture_accesses_tracked () =
  let mem = { T.m_space = Texture; m_addresses = Array.init 32 (fun l -> l * 128) } in
  let loads = List.init 4 (fun i -> item ~dst:i ~unit_:Ldst ~mem i) in
  let s = run (mk_trace loads) in
  Alcotest.(check int) "texture line accesses" (4 * 32) s.Sim.tex_accesses

let test_sfu_throughput_bound () =
  (* Independent SFU ops: bound by the 8-cycle SFU initiation interval. *)
  let n = 32 in
  let sfu = List.init n (fun i -> item ~unit_:Sfu ~dst:i i) in
  let s = run (mk_trace sfu) in
  Alcotest.(check bool) "at least II x n cycles" true (s.Sim.cycles >= 8 * (n - 1));
  let spu = List.init n (fun i -> item ~dst:i i) in
  let s2 = run (mk_trace spu) in
  Alcotest.(check bool) "spu stream faster" true (s2.Sim.cycles < s.Sim.cycles)

(* ---------------------------------------------------------------- *)
(* Stall attribution: every scheduler slot of every cycle is accounted
   for exactly once, so
   issued_slots + sum of stall_* = cycles x warp_schedulers.
   Each test also runs under ~check:true, which enforces the same
   identity inside the model. *)

module Stall = Gpr_obs.Stall

let run_checked ?(waves = 1) ?(blocks = 1) ?(mode = Sim.Baseline) ?alloc trace =
  let alloc = match alloc with Some a -> a | None -> full_alloc 64 in
  Sim.run ~check:true ~waves cfg ~trace ~alloc ~blocks_per_sm:blocks ~mode

let check_identity name (s : Sim.stats) =
  Alcotest.(check int)
    (name ^ ": slots = cycles x schedulers")
    (s.Sim.cycles * cfg.warp_schedulers)
    (Stall.total_slots (Sim.breakdown s));
  Alcotest.(check int)
    (name ^ ": issued slots = warp instructions")
    s.Sim.warp_instructions s.Sim.issued_slots

let test_stall_identity_scoreboard () =
  let chain =
    List.init 32 (fun i ->
        item ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i i)
  in
  let s = run_checked (mk_trace chain) in
  check_identity "chain" s;
  Alcotest.(check bool) "dependent chain stalls on the scoreboard" true
    (s.Sim.stall_scoreboard > 0);
  Alcotest.(check int) "no spill stalls outside Spill mode" 0
    s.Sim.stall_spill_port

let test_stall_identity_barrier () =
  (* Warp 0 parks at a barrier while warp 1 grinds through a dependent
     chain: warp 0's scheduler loses its slots to the barrier wait. *)
  let w0 = [ item ~warp:0 ~unit_:Sync 0; item ~warp:0 ~dst:40 1 ] in
  let w1 =
    List.init 24 (fun i ->
        item ~warp:1 ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i (i + 2))
    @ [ item ~warp:1 ~unit_:Sync 26 ]
  in
  let s = run_checked (mk_trace ~warps_per_block:2 (w0 @ w1)) in
  check_identity "barrier" s;
  Alcotest.(check bool) "barrier wait attributed" true (s.Sim.stall_barrier > 0)

let test_stall_identity_spill_port () =
  (* Register 0 lives in the spill space; every write makes dependents
     wait out the spill write-through, which must be attributed to the
     spill port, not the plain scoreboard. *)
  let spilled = Hashtbl.create 4 in
  Hashtbl.replace spilled 0 ();
  let items =
    List.concat
      (List.init 6 (fun i ->
           [ item ~dst:0 (2 * i); item ~srcs:[ 0 ] ~dst:(i + 1) ((2 * i) + 1) ]))
  in
  let s =
    run_checked ~mode:(Sim.Spill { latency = 40; spilled }) (mk_trace items)
  in
  check_identity "spill" s;
  Alcotest.(check bool) "spill traffic happened" true (s.Sim.spill_stores > 0);
  Alcotest.(check bool) "spill-port stalls attributed" true
    (s.Sim.stall_spill_port > 0)

let test_stall_identity_empty_trace () =
  let s = run_checked (mk_trace []) in
  check_identity "empty" s;
  Alcotest.(check int) "degenerate run is one cycle" 1 s.Sim.cycles;
  Alcotest.(check int) "all slots idle"
    (s.Sim.cycles * cfg.warp_schedulers)
    s.Sim.stall_empty

let test_stall_identity_all_modes () =
  (* One mixed trace through all three register-file models, multiple
     waves and blocks: the identity is structural, not mode-specific. *)
  let mem = { T.m_space = Global; m_addresses = Array.init 32 (fun l -> l * 4) } in
  let body w =
    List.init 16 (fun i ->
        if i mod 5 = 4 then item ~warp:w ~unit_:Ldst ~mem ~dst:i (16 * w + i)
        else item ~warp:w ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i
            (16 * w + i))
  in
  let trace = mk_trace ~warps_per_block:4 (List.concat_map body [ 0; 1; 2; 3 ]) in
  let spilled = Hashtbl.create 4 in
  Hashtbl.replace spilled 1 ();
  List.iter
    (fun (label, mode) ->
      let s = run_checked ~waves:3 ~blocks:2 ~mode trace in
      check_identity label s)
    [
      ("baseline", Sim.Baseline);
      ("proposed", Sim.Proposed { writeback_delay = 3 });
      ("spill", Sim.Spill { latency = 20; spilled });
    ]

(* ---------------------------------------------------------------- *)
(* Cache unit tests *)

let test_cache_basics () =
  let c = Gpr_sim.Cache.create ~capacity_bytes:1024 ~line_bytes:128 ~assoc:2 in
  Alcotest.(check bool) "first miss" false (Gpr_sim.Cache.access c 0);
  Alcotest.(check bool) "then hit" true (Gpr_sim.Cache.access c 64);
  Alcotest.(check int) "hits" 1 (Gpr_sim.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Gpr_sim.Cache.misses c)

let test_cache_lru_eviction () =
  (* 2 sets x 2 ways of 128B: three lines mapping to one set evict LRU. *)
  let c = Gpr_sim.Cache.create ~capacity_bytes:512 ~line_bytes:128 ~assoc:2 in
  ignore (Gpr_sim.Cache.access c 0);      (* set 0 *)
  ignore (Gpr_sim.Cache.access c 256);    (* set 0 *)
  ignore (Gpr_sim.Cache.access c 512);    (* set 0: evicts addr 0 *)
  Alcotest.(check bool) "0 evicted" false (Gpr_sim.Cache.access c 0);
  Alcotest.(check bool) "512 retained" true (Gpr_sim.Cache.access c 512)

let test_cache_hit_rate_reset () =
  let c = Gpr_sim.Cache.create ~capacity_bytes:1024 ~line_bytes:128 ~assoc:4 in
  ignore (Gpr_sim.Cache.access c 0);
  ignore (Gpr_sim.Cache.access c 0);
  Alcotest.(check (float 1e-9)) "50%" 0.5 (Gpr_sim.Cache.hit_rate c);
  Gpr_sim.Cache.reset_stats c;
  Alcotest.(check (float 1e-9)) "reset -> 1.0 (vacuous)" 1.0
    (Gpr_sim.Cache.hit_rate c)

(* ---------------------------------------------------------------- *)
(* End-to-end on a real kernel: occupancy helps a latency-bound kernel. *)

let test_occupancy_improves_latency_bound_kernel () =
  let b = Builder.create ~name:"lat" in
  let open Builder in
  let x = global_buffer b F32 "x" in
  let y = global_buffer b F32 "y" in
  let i = global_thread_id_x b in
  (* A pointer-chase-flavoured dependent chain of loads. *)
  let v0 = ld b x ~$i in
  let v1 = ld b x ~$(iand b ~$(ftoi b ~$(fmul b ~$v0 (cf 1000.0))) (ci 1023)) in
  let v2 = ld b x ~$(iand b ~$(ftoi b ~$(fmul b ~$v1 (cf 1000.0))) (ci 1023)) in
  st b y ~$i ~$v2;
  let kernel = finish b in
  let data =
    [ ("x", E.F_data (Gpr_workloads.Inputs.qfloats ~seed:5 ~n:1024));
      ("y", E.F_data (Array.make 1024 0.0)) ]
  in
  let bindings = E.bindings_for kernel ~data () in
  let trace =
    Option.get
      (E.run kernel ~launch:(launch_1d ~block:64 ~grid:16) ~params:[||]
         ~bindings { E.default_config with collect_trace = true })
  in
  let alloc = A.baseline kernel in
  let ipc blocks =
    (Sim.run ~waves:4 cfg ~trace ~alloc ~blocks_per_sm:blocks
       ~mode:Sim.Baseline).Sim.sm_ipc
  in
  Alcotest.(check bool) "4 blocks beat 1" true (ipc 4 > 1.5 *. ipc 1)

let () =
  Alcotest.run "sim"
    [
      ( "pipeline",
        [
          Alcotest.test_case "dependent chain" `Quick test_dependent_chain_serialises;
          Alcotest.test_case "latency hiding" `Quick test_more_warps_hide_latency;
          Alcotest.test_case "writeback monotone" `Quick test_writeback_delay_monotone;
          Alcotest.test_case "proposed overhead" `Quick
            test_proposed_overhead_at_same_occupancy;
          Alcotest.test_case "sfu bound" `Quick test_sfu_throughput_bound;
        ] );
      ( "proposed-path",
        [
          Alcotest.test_case "conversions" `Quick test_conversions_counted;
          Alcotest.test_case "double fetches" `Quick test_double_fetch_counted;
        ] );
      ( "sync+waves",
        [
          Alcotest.test_case "barrier completes" `Quick test_barrier_completes;
          Alcotest.test_case "waves scale" `Quick test_waves_scale_work;
        ] );
      ( "stall-attribution",
        [
          Alcotest.test_case "scoreboard chain" `Quick
            test_stall_identity_scoreboard;
          Alcotest.test_case "barrier wait" `Quick test_stall_identity_barrier;
          Alcotest.test_case "spill port" `Quick test_stall_identity_spill_port;
          Alcotest.test_case "empty trace" `Quick
            test_stall_identity_empty_trace;
          Alcotest.test_case "all modes" `Quick test_stall_identity_all_modes;
        ] );
      ( "memory",
        [
          Alcotest.test_case "latency + caches" `Quick test_memory_latency_and_caches;
          Alcotest.test_case "texture tracked" `Quick test_texture_accesses_tracked;
          Alcotest.test_case "cache basics" `Quick test_cache_basics;
          Alcotest.test_case "cache lru" `Quick test_cache_lru_eviction;
          Alcotest.test_case "cache reset" `Quick test_cache_hit_rate_reset;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "occupancy helps" `Quick
            test_occupancy_improves_latency_bound_kernel ] );
    ]
