(* Timing-simulator tests: latency hiding, scoreboard serialisation,
   writeback-delay sensitivity, barrier progress, cache model, and the
   proposed-path overheads (conversions, double fetches). *)

open Gpr_isa
open Gpr_isa.Types
module E = Gpr_exec.Exec
module T = Gpr_exec.Trace
module Sim = Gpr_sim.Sim
module A = Gpr_alloc.Alloc

let cfg = Gpr_arch.Config.fermi_gtx480

(* ---------------------------------------------------------------- *)
(* Synthetic traces *)

let item ?(warp = 0) ?(block = 0) ?(unit_ = Spu) ?(srcs = []) ?dst
    ?(dst_float = false) ?mem pc =
  {
    T.t_warp = warp;
    t_block_id = block;
    t_pc = pc;
    t_unit = unit_;
    t_srcs = srcs;
    t_dst = dst;
    t_dst_float = dst_float;
    t_active = 32;
    t_mem = mem;
  }

let mk_trace ?(warps_per_block = 1) ?(num_blocks = 1) items =
  {
    T.items = Array.of_list items;
    warps_per_block;
    num_blocks;
    thread_instructions = List.fold_left (fun a (i : T.item) -> a + i.t_active) 0 items;
  }

(* An allocation covering registers 0..n-1 at full width. *)
let full_alloc n =
  let placements = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    Hashtbl.replace placements v
      { A.reg0 = v; mask0 = 0xff; reg1 = -1; mask1 = 0; slices = 8; bits = 32;
        signed = true; is_float = false }
  done;
  { A.pressure = n; placements; num_arch_regs = n; peak_slices = n * 8;
    split_count = 0 }

let run ?(waves = 1) ?(blocks = 1) ?(mode = Sim.Baseline) ?alloc trace =
  let alloc = match alloc with Some a -> a | None -> full_alloc 64 in
  Sim.run ~waves cfg ~trace ~alloc ~blocks_per_sm:blocks ~mode

let test_dependent_chain_serialises () =
  (* r(i+1) depends on r(i): each instruction waits for the previous
     writeback; cycles must scale with the chain length. *)
  let n = 32 in
  let chain =
    List.init n (fun i ->
        item ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i i)
  in
  let dep = run (mk_trace chain) in
  let indep = List.init n (fun i -> item ~dst:i i) in
  let ind = run (mk_trace indep) in
  Alcotest.(check bool) "dependency costs cycles" true
    (dep.Sim.cycles > ind.Sim.cycles + (n * (cfg.spu_latency - 1)) / 2);
  Alcotest.(check int) "same work" dep.Sim.warp_instructions
    ind.Sim.warp_instructions

let test_more_warps_hide_latency () =
  (* The same dependent chain in many warps: IPC should rise with the
     number of resident warps. *)
  let chain w =
    List.init 24 (fun i ->
        item ~warp:w ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i i)
  in
  let one = run (mk_trace (chain 0)) in
  let eight =
    run
      (mk_trace ~warps_per_block:8
         (List.concat_map chain (List.init 8 Fun.id)))
  in
  Alcotest.(check bool) "8 warps faster per instr" true
    (eight.Sim.sm_ipc > 3.0 *. one.Sim.sm_ipc)

let test_writeback_delay_monotone () =
  let chain =
    List.init 24 (fun i ->
        item ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i i)
  in
  let trace = mk_trace chain in
  let cycles d =
    (run ~mode:(Sim.Proposed { writeback_delay = d }) trace).Sim.cycles
  in
  let cs = List.map cycles [ 0; 2; 4; 8 ] in
  let rec nondecr = function
    | a :: (b :: _ as r) -> a <= b && nondecr r
    | _ -> true
  in
  Alcotest.(check bool) "monotone in writeback delay" true (nondecr cs);
  Alcotest.(check bool) "strictly grows overall" true
    (List.nth cs 3 > List.hd cs)

let test_proposed_overhead_at_same_occupancy () =
  let chain =
    List.init 32 (fun i ->
        item ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i i)
  in
  let trace = mk_trace chain in
  let b = run trace in
  let p = run ~mode:(Sim.Proposed { writeback_delay = 3 }) trace in
  Alcotest.(check bool) "proposed not faster at equal occupancy" true
    (p.Sim.cycles >= b.Sim.cycles)

let test_conversions_counted () =
  (* Narrow float sources must pass through the value converter. *)
  let placements = Hashtbl.create 4 in
  Hashtbl.replace placements 0
    { A.reg0 = 0; mask0 = 0xf; reg1 = -1; mask1 = 0; slices = 4; bits = 16;
      signed = false; is_float = true };
  let alloc =
    { A.pressure = 1; placements; num_arch_regs = 1; peak_slices = 4;
      split_count = 0 }
  in
  let items = List.init 6 (fun i -> item ~srcs:[ 0 ] i) in
  let s =
    run ~alloc ~mode:(Sim.Proposed { writeback_delay = 3 })
      (mk_trace (item ~dst:0 99 :: items))
  in
  Alcotest.(check int) "six conversions" 6 s.Sim.conversions;
  let sbase = run ~alloc (mk_trace (item ~dst:0 99 :: items)) in
  Alcotest.(check int) "baseline never converts" 0 sbase.Sim.conversions

let test_double_fetch_counted () =
  let placements = Hashtbl.create 4 in
  Hashtbl.replace placements 0
    { A.reg0 = 0; mask0 = 0x3; reg1 = 1; mask1 = 0x3; slices = 4; bits = 16;
      signed = true; is_float = false };
  let alloc =
    { A.pressure = 2; placements; num_arch_regs = 1; peak_slices = 4;
      split_count = 1 }
  in
  let items = List.init 4 (fun i -> item ~srcs:[ 0 ] i) in
  let s =
    run ~alloc ~mode:(Sim.Proposed { writeback_delay = 3 })
      (mk_trace (item ~dst:0 99 :: items))
  in
  Alcotest.(check int) "double fetches" 4 s.Sim.double_fetches;
  let sb = run ~alloc (mk_trace (item ~dst:0 99 :: items)) in
  Alcotest.(check int) "baseline single fetch" 0 sb.Sim.double_fetches

let test_barrier_completes () =
  (* Two warps with interleaved barriers must make progress. *)
  let w warp =
    [ item ~warp ~dst:0 0; item ~warp ~unit_:Sync 1; item ~warp ~dst:1 2;
      item ~warp ~unit_:Sync 3; item ~warp ~dst:2 4 ]
  in
  let s = run (mk_trace ~warps_per_block:2 (w 0 @ w 1)) in
  Alcotest.(check int) "all issued" 10 s.Sim.warp_instructions;
  Alcotest.(check bool) "finished quickly" true (s.Sim.cycles < 10_000)

let test_waves_scale_work () =
  let items = List.init 16 (fun i -> item ~dst:i i) in
  let one = run ~waves:1 (mk_trace items) in
  let four = run ~waves:4 (mk_trace items) in
  Alcotest.(check int) "4x thread instructions"
    (4 * one.Sim.thread_instructions) four.Sim.thread_instructions

let test_memory_latency_and_caches () =
  (* Same address repeatedly: first access misses, later ones hit. *)
  let mem = { T.m_space = Global; m_addresses = Array.init 32 (fun l -> l * 4) } in
  let loads = List.init 8 (fun i -> item ~dst:i ~unit_:Ldst ~mem i) in
  let s = run (mk_trace loads) in
  Alcotest.(check bool) "l1 mostly hits after warmup" true
    (s.Sim.l1_hit_rate > 0.8);
  (* Scattered addresses (one line per lane) serialise the LD/ST unit. *)
  let scat = { T.m_space = Global; m_addresses = Array.init 32 (fun l -> l * 128) } in
  let sloads = List.init 8 (fun i -> item ~dst:i ~unit_:Ldst ~mem:scat i) in
  let s2 = run (mk_trace sloads) in
  Alcotest.(check bool) "scatter slower than coalesced" true
    (s2.Sim.cycles > s.Sim.cycles)

let test_texture_accesses_tracked () =
  let mem = { T.m_space = Texture; m_addresses = Array.init 32 (fun l -> l * 128) } in
  let loads = List.init 4 (fun i -> item ~dst:i ~unit_:Ldst ~mem i) in
  let s = run (mk_trace loads) in
  Alcotest.(check int) "texture line accesses" (4 * 32) s.Sim.tex_accesses

let test_sfu_throughput_bound () =
  (* Independent SFU ops: bound by the 8-cycle SFU initiation interval. *)
  let n = 32 in
  let sfu = List.init n (fun i -> item ~unit_:Sfu ~dst:i i) in
  let s = run (mk_trace sfu) in
  Alcotest.(check bool) "at least II x n cycles" true (s.Sim.cycles >= 8 * (n - 1));
  let spu = List.init n (fun i -> item ~dst:i i) in
  let s2 = run (mk_trace spu) in
  Alcotest.(check bool) "spu stream faster" true (s2.Sim.cycles < s.Sim.cycles)

(* ---------------------------------------------------------------- *)
(* Stall attribution: every scheduler slot of every cycle is accounted
   for exactly once, so
   issued_slots + sum of stall_* = cycles x warp_schedulers.
   Each test also runs under ~check:true, which enforces the same
   identity inside the model. *)

module Stall = Gpr_obs.Stall

let run_checked ?(waves = 1) ?(blocks = 1) ?(mode = Sim.Baseline) ?alloc trace =
  let alloc = match alloc with Some a -> a | None -> full_alloc 64 in
  Sim.run ~check:true ~waves cfg ~trace ~alloc ~blocks_per_sm:blocks ~mode

let check_identity name (s : Sim.stats) =
  Alcotest.(check int)
    (name ^ ": slots = cycles x schedulers")
    (s.Sim.cycles * cfg.warp_schedulers)
    (Stall.total_slots (Sim.breakdown s));
  Alcotest.(check int)
    (name ^ ": issued slots = warp instructions")
    s.Sim.warp_instructions s.Sim.issued_slots

let test_stall_identity_scoreboard () =
  let chain =
    List.init 32 (fun i ->
        item ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i i)
  in
  let s = run_checked (mk_trace chain) in
  check_identity "chain" s;
  Alcotest.(check bool) "dependent chain stalls on the scoreboard" true
    (s.Sim.stall_scoreboard > 0);
  Alcotest.(check int) "no spill stalls outside Spill mode" 0
    s.Sim.stall_spill_port

let test_stall_identity_barrier () =
  (* Warp 0 parks at a barrier while warp 1 grinds through a dependent
     chain: warp 0's scheduler loses its slots to the barrier wait. *)
  let w0 = [ item ~warp:0 ~unit_:Sync 0; item ~warp:0 ~dst:40 1 ] in
  let w1 =
    List.init 24 (fun i ->
        item ~warp:1 ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i (i + 2))
    @ [ item ~warp:1 ~unit_:Sync 26 ]
  in
  let s = run_checked (mk_trace ~warps_per_block:2 (w0 @ w1)) in
  check_identity "barrier" s;
  Alcotest.(check bool) "barrier wait attributed" true (s.Sim.stall_barrier > 0)

let test_stall_identity_spill_port () =
  (* Register 0 lives in the spill space; every write makes dependents
     wait out the spill write-through, which must be attributed to the
     spill port, not the plain scoreboard. *)
  let spilled = Hashtbl.create 4 in
  Hashtbl.replace spilled 0 ();
  let items =
    List.concat
      (List.init 6 (fun i ->
           [ item ~dst:0 (2 * i); item ~srcs:[ 0 ] ~dst:(i + 1) ((2 * i) + 1) ]))
  in
  let s =
    run_checked ~mode:(Sim.Spill { latency = 40; spilled }) (mk_trace items)
  in
  check_identity "spill" s;
  Alcotest.(check bool) "spill traffic happened" true (s.Sim.spill_stores > 0);
  Alcotest.(check bool) "spill-port stalls attributed" true
    (s.Sim.stall_spill_port > 0)

let test_stall_identity_empty_trace () =
  let s = run_checked (mk_trace []) in
  check_identity "empty" s;
  Alcotest.(check int) "degenerate run is one cycle" 1 s.Sim.cycles;
  Alcotest.(check int) "all slots idle"
    (s.Sim.cycles * cfg.warp_schedulers)
    s.Sim.stall_empty

let test_stall_identity_all_modes () =
  (* One mixed trace through all three register-file models, multiple
     waves and blocks: the identity is structural, not mode-specific. *)
  let mem = { T.m_space = Global; m_addresses = Array.init 32 (fun l -> l * 4) } in
  let body w =
    List.init 16 (fun i ->
        if i mod 5 = 4 then item ~warp:w ~unit_:Ldst ~mem ~dst:i (16 * w + i)
        else item ~warp:w ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i
            (16 * w + i))
  in
  let trace = mk_trace ~warps_per_block:4 (List.concat_map body [ 0; 1; 2; 3 ]) in
  let spilled = Hashtbl.create 4 in
  Hashtbl.replace spilled 1 ();
  List.iter
    (fun (label, mode) ->
      let s = run_checked ~waves:3 ~blocks:2 ~mode trace in
      check_identity label s)
    [
      ("baseline", Sim.Baseline);
      ("proposed", Sim.Proposed { writeback_delay = 3 });
      ("spill", Sim.Spill { latency = 20; spilled });
    ]

(* ---------------------------------------------------------------- *)
(* Cache unit tests *)

let test_cache_basics () =
  let c = Gpr_sim.Cache.create ~capacity_bytes:1024 ~line_bytes:128 ~assoc:2 in
  Alcotest.(check bool) "first miss" false (Gpr_sim.Cache.access c 0);
  Alcotest.(check bool) "then hit" true (Gpr_sim.Cache.access c 64);
  Alcotest.(check int) "hits" 1 (Gpr_sim.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Gpr_sim.Cache.misses c)

let test_cache_lru_eviction () =
  (* 2 sets x 2 ways of 128B: three lines mapping to one set evict LRU. *)
  let c = Gpr_sim.Cache.create ~capacity_bytes:512 ~line_bytes:128 ~assoc:2 in
  ignore (Gpr_sim.Cache.access c 0);      (* set 0 *)
  ignore (Gpr_sim.Cache.access c 256);    (* set 0 *)
  ignore (Gpr_sim.Cache.access c 512);    (* set 0: evicts addr 0 *)
  Alcotest.(check bool) "0 evicted" false (Gpr_sim.Cache.access c 0);
  Alcotest.(check bool) "512 retained" true (Gpr_sim.Cache.access c 512)

let test_cache_hit_rate_reset () =
  let c = Gpr_sim.Cache.create ~capacity_bytes:1024 ~line_bytes:128 ~assoc:4 in
  ignore (Gpr_sim.Cache.access c 0);
  ignore (Gpr_sim.Cache.access c 0);
  Alcotest.(check (float 1e-9)) "50%" 0.5 (Gpr_sim.Cache.hit_rate c);
  Gpr_sim.Cache.reset_stats c;
  Alcotest.(check (float 1e-9)) "reset -> 1.0 (vacuous)" 1.0
    (Gpr_sim.Cache.hit_rate c)

(* ---------------------------------------------------------------- *)
(* Differential equivalence: the flat engine (Sim) against the original
   list/Hashtbl oracle (Sim_ref).  [Stdlib.compare] over the whole
   stats record pins every field byte-equal — cycles, IPCs, hit rates,
   all six stall counters, spill traffic — on the full workload
   registry under every registered register-file backend, and on
   generated kernels via a QCheck property (seed count scaled by
   GPR_SIM_EQ_COUNT; CI runs 500). *)

module Sim_ref = Gpr_sim.Sim_ref
module W = Gpr_workloads.Workload
module Backend = Gpr_backend.Backend
module Range = Gpr_analysis.Range
module Gen = Gpr_check.Gen

let fast_tests = Sys.getenv_opt "GPR_FAST_TESTS" = Some "1"

let stats_fields (s : Sim.stats) =
  [
    ("cycles", string_of_int s.cycles);
    ("thread_instructions", string_of_int s.thread_instructions);
    ("warp_instructions", string_of_int s.warp_instructions);
    ("sm_ipc", Printf.sprintf "%h" s.sm_ipc);
    ("gpu_ipc", Printf.sprintf "%h" s.gpu_ipc);
    ("issued_per_cycle", Printf.sprintf "%h" s.issued_per_cycle);
    ("l1_hit_rate", Printf.sprintf "%h" s.l1_hit_rate);
    ("tex_hit_rate", Printf.sprintf "%h" s.tex_hit_rate);
    ("l2_hit_rate", Printf.sprintf "%h" s.l2_hit_rate);
    ("tex_accesses", string_of_int s.tex_accesses);
    ("double_fetches", string_of_int s.double_fetches);
    ("conversions", string_of_int s.conversions);
    ("issued_slots", string_of_int s.issued_slots);
    ("stall_scoreboard", string_of_int s.stall_scoreboard);
    ("stall_no_cu", string_of_int s.stall_no_cu);
    ("stall_bank_conflict", string_of_int s.stall_bank_conflict);
    ("stall_spill_port", string_of_int s.stall_spill_port);
    ("stall_barrier", string_of_int s.stall_barrier);
    ("stall_empty", string_of_int s.stall_empty);
    ("bank_conflicts", string_of_int s.bank_conflicts);
    ("idle_cycles", string_of_int s.idle_cycles);
    ("spill_loads", string_of_int s.spill_loads);
    ("spill_stores", string_of_int s.spill_stores);
  ]

(* Run both engines under ~check:true and demand byte-equal stats (or
   the same invariant violation).  Returns the fast stats so callers
   can pile further assertions on top. *)
let assert_engines_agree ?(cfg = cfg) label ~trace ~alloc ~blocks_per_sm ~mode
    ~waves =
  let fast =
    try Ok (Sim.run ~check:true ~waves cfg ~trace ~alloc ~blocks_per_sm ~mode)
    with Sim.Invariant_violation m -> Error m
  in
  let slow =
    try
      Ok (Sim_ref.run ~check:true ~waves cfg ~trace ~alloc ~blocks_per_sm ~mode)
    with Sim.Invariant_violation m -> Error m
  in
  match (fast, slow) with
  | Ok f, Ok s ->
    if Stdlib.compare f s <> 0 then begin
      let diffs =
        List.concat
          (List.map2
             (fun (n, a) (_, b) ->
               if a = b then []
               else [ Printf.sprintf "%s: fast=%s ref=%s" n a b ])
             (stats_fields f) (stats_fields s))
      in
      Alcotest.failf "%s (waves=%d): engines diverge on %s" label waves
        (String.concat "; " diffs)
    end;
    f
  | Error mf, Error ms ->
    if mf <> ms then
      Alcotest.failf "%s (waves=%d): different violations: fast=%S ref=%S"
        label waves mf ms
    else Alcotest.failf "%s (waves=%d): both engines violate: %s" label waves mf
  | Error m, Ok _ ->
    Alcotest.failf "%s (waves=%d): only the fast engine violates: %s" label
      waves m
  | Ok _, Error m ->
    Alcotest.failf "%s (waves=%d): only Sim_ref violates: %s" label waves m

(* Exact pins on the real workloads: every registry kernel under every
   registered backend (baseline / slice / spill), each mapped through
   its own occupancy and sim mode exactly as `gpr report --backend`
   does.  Under GPR_FAST_TESTS=1 only the 2-kernel CI smoke subset
   runs. *)
let test_registry_equivalence () =
  let kernels =
    if fast_tests then
      List.filter
        (fun (w : W.t) -> w.name = "Hotspot" || w.name = "DWT2D")
        Gpr_workloads.Registry.all
    else Gpr_workloads.Registry.all
  in
  Alcotest.(check bool) "registry non-empty" true (kernels <> []);
  List.iter
    (fun (w : W.t) ->
      let trace = W.trace w ~quantize:None in
      let width = Gpr_analysis.Width.analyze w.kernel ~launch:w.launch in
      List.iter
        (fun (scheme : Backend.t) ->
          let module S = (val scheme) in
          let res = S.analyze ~kernel:w.kernel ~width ~precision:None in
          let occ =
            (Backend.occupancy cfg res
               ~warps_per_block:(W.warps_per_block w)
               ~shared_bytes_per_block:(W.shared_bytes_per_block w))
              .Gpr_arch.Occupancy.blocks_per_sm
          in
          let mode = Backend.sim_mode scheme res in
          ignore
            (assert_engines_agree
               (Printf.sprintf "%s/%s" w.name S.id)
               ~trace ~alloc:res.Backend.alloc ~blocks_per_sm:occ ~mode
               ~waves:1))
        Gpr_backend.Registry.all)
    kernels

(* Generated kernels: one seed exercises all three register-file modes
   at two wave counts through both engines. *)
let check_generated_seed seed =
  match
    (try
       let case = Gen.generate seed in
       let data = case.Gen.data () in
       let bindings =
         E.bindings_for case.Gen.kernel ~data ~shared:case.Gen.shared ()
       in
       E.run case.Gen.kernel ~launch:case.Gen.launch ~params:case.Gen.params
         ~bindings
         { E.default_config with collect_trace = true; max_steps = Some 500_000 }
       |> Option.map (fun t -> (case, t))
     with _ -> None)
  with
  | None -> () (* non-executing generator output: nothing to compare *)
  | Some (case, trace) ->
    let wt = Gpr_analysis.Width.analyze case.Gen.kernel ~launch:case.Gen.launch in
    let width_of (r : vreg) =
      match r.ty with
      | Pred | F32 -> 32
      | S32 | U32 -> Gpr_analysis.Width.var_bitwidth wt r.id
    in
    let shared_bytes =
      4 * List.fold_left (fun acc (_, n) -> acc + n) 0 case.Gen.shared
    in
    let occ_of regs spill_bytes =
      (Gpr_arch.Occupancy.compute cfg ~regs_per_thread:(max 1 regs)
         ~warps_per_block:trace.T.warps_per_block
         ~shared_bytes_per_block:
           (shared_bytes + (spill_bytes * 32 * trace.T.warps_per_block)))
        .Gpr_arch.Occupancy.blocks_per_sm
    in
    let alloc_base = A.baseline case.Gen.kernel in
    let alloc_comp = A.run case.Gen.kernel ~width_of in
    let module Sp = Gpr_backend.Backend_spill in
    let res = Sp.analyze ~kernel:case.Gen.kernel ~width:wt ~precision:None in
    List.iter
      (fun waves ->
        ignore
          (assert_engines_agree
             (Printf.sprintf "gen%d/baseline" seed)
             ~trace ~alloc:alloc_base
             ~blocks_per_sm:(occ_of alloc_base.A.pressure 0)
             ~mode:Sim.Baseline ~waves);
        ignore
          (assert_engines_agree
             (Printf.sprintf "gen%d/proposed" seed)
             ~trace ~alloc:alloc_comp
             ~blocks_per_sm:(occ_of alloc_comp.A.pressure 0)
             ~mode:(Sim.Proposed { writeback_delay = 3 })
             ~waves);
        ignore
          (assert_engines_agree
             (Printf.sprintf "gen%d/spill" seed)
             ~trace ~alloc:res.Backend.alloc
             ~blocks_per_sm:
               (occ_of res.Backend.alloc.A.pressure
                  (Backend.spill_bytes_per_thread res))
             ~mode:(Backend.sim_mode (module Sp) res)
             ~waves))
      [ 1; 6 ]

let eq_count =
  match Sys.getenv_opt "GPR_SIM_EQ_COUNT" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 40)
  | None -> if fast_tests then 10 else 40

let prop_engines_agree =
  QCheck.Test.make ~name:"fast engine = Sim_ref on generated kernels"
    ~count:eq_count
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      check_generated_seed seed;
      true)

(* ---------------------------------------------------------------- *)
(* Idle fast-forward edge cases: schedules engineered so the fast
   engine's event-jump path (replaying frozen stall causes across
   skipped cycles) is the dominant regime.  Each case must (a) agree
   with Sim_ref byte-for-byte and (b) satisfy the slot identity, which
   ~check:true also enforces inside both engines. *)

let agree_checked ?cfg label ?(waves = 1) ?(blocks = 1) ?(mode = Sim.Baseline)
    ?alloc trace =
  let alloc = match alloc with Some a -> a | None -> full_alloc 64 in
  let s =
    assert_engines_agree ?cfg label ~trace ~alloc ~blocks_per_sm:blocks ~mode
      ~waves
  in
  check_identity label s;
  s

let test_ffwd_empty_trace () =
  let s = agree_checked "ffwd-empty" (mk_trace []) in
  Alcotest.(check int) "one cycle" 1 s.Sim.cycles

let test_ffwd_single_warp_barrier () =
  (* A lone warp slamming into back-to-back barriers: every Sync must
     release immediately (nobody else to wait for), with the dependent
     chains between barriers driving long idle stretches that the
     fast-forward jumps over. *)
  let items =
    List.concat
      (List.init 8 (fun r ->
           [
             item ~dst:(2 * r) (3 * r);
             item ~srcs:[ 2 * r ] ~dst:((2 * r) + 1) ((3 * r) + 1);
             item ~unit_:Sync ((3 * r) + 2);
           ]))
  in
  let s = agree_checked "ffwd-barrier-1warp" (mk_trace items) in
  Alcotest.(check int) "all issued" 24 s.Sim.warp_instructions;
  Alcotest.(check bool) "idle cycles were skipped over" true
    (s.Sim.idle_cycles > 0)

let test_ffwd_deadlock_adjacent_barrier () =
  (* Warp 1 retires without ever reaching a Sync while warp 0 waits at
     one: the barrier must release for warp 0 anyway (exited warps
     cannot hold a block hostage), in both engines identically. *)
  let w0 =
    [ item ~warp:0 ~dst:0 0; item ~warp:0 ~unit_:Sync 1;
      item ~warp:0 ~srcs:[ 0 ] ~dst:1 2 ]
  in
  let w1 = [ item ~warp:1 ~dst:8 3 ] in
  let s =
    agree_checked "ffwd-deadlock-adjacent"
      (mk_trace ~warps_per_block:2 (w0 @ w1))
  in
  Alcotest.(check int) "all issued" 4 s.Sim.warp_instructions;
  Alcotest.(check bool) "bounded" true (s.Sim.cycles < 10_000)

let test_ffwd_same_cycle_releases () =
  (* Two SPU writes issued by different schedulers on the same cycle
     retire on the same cycle; a reader of both then wakes exactly
     once.  Repeated so several scoreboard releases collide per run —
     the retire heap must drain same-cycle events in the reference
     engine's LIFO bucket order. *)
  let round r =
    [
      item ~warp:0 ~dst:(3 * r) (10 * r);
      item ~warp:1 ~dst:((3 * r) + 1) ((10 * r) + 1);
      item ~warp:0
        ~srcs:[ 3 * r; (3 * r) + 1 ]
        ~dst:((3 * r) + 2)
        ((10 * r) + 2);
      item ~warp:1 ~srcs:[ (3 * r) + 2 ] ((10 * r) + 3);
    ]
  in
  let items = List.concat (List.init 6 round) in
  let s =
    agree_checked "ffwd-same-cycle-releases"
      (mk_trace ~warps_per_block:2 items)
  in
  Alcotest.(check bool) "scoreboard stalls present" true
    (s.Sim.stall_scoreboard > 0)

let test_ffwd_spill_port_saturation () =
  (* Every register lives in the spill space behind a slow, serialising
     port: long latencies force deep idle stretches whose frozen cause
     must replay as Spill_port, not leak into Scoreboard or Empty. *)
  let spilled = Hashtbl.create 8 in
  for r = 0 to 7 do
    Hashtbl.replace spilled r ()
  done;
  let items =
    List.concat
      (List.init 8 (fun i ->
           let r = i mod 8 in
           [
             item ~dst:r (2 * i);
             item ~srcs:[ r ] ~dst:((r + 1) mod 8) ((2 * i) + 1);
           ]))
  in
  let s =
    agree_checked "ffwd-spill-saturation"
      ~mode:(Sim.Spill { latency = 200; spilled })
      ~waves:2 (mk_trace items)
  in
  Alcotest.(check bool) "spill port saturated" true
    (s.Sim.stall_spill_port > 0);
  Alcotest.(check bool) "fast-forward engaged" true (s.Sim.idle_cycles > 0);
  Alcotest.(check bool) "spill traffic" true
    (s.Sim.spill_loads > 0 && s.Sim.spill_stores > 0)

(* ---------------------------------------------------------------- *)
(* Perf regression (tier 2; skipped under GPR_FAST_TESTS=1): re-time
   the CI smoke subset (Hotspot + DWT2D) per backend with both engines.
   Two gates:
   - machine-independent: the flat engine must stay >= 2x faster than
     the Sim_ref oracle on the same inputs (the committed BENCH_sim.json
     records >= 5x over the full registry on the baseline host);
   - absolute (only on the host that produced the committed
     BENCH_sim.json): per-scheme cycles/sec must not regress more than
     30% against the committed numbers for these kernels. *)

module Json = Gpr_obs.Json

let smoke_names = [ "Hotspot"; "DWT2D" ]

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Per-scheme (cycles, fast seconds, ref seconds) over the smoke set,
   at the same wave count as BENCH_sim.json. *)
let measure_smoke ~waves =
  let kernels =
    List.filter_map Gpr_workloads.Registry.by_name smoke_names
  in
  Alcotest.(check int) "smoke kernels found" (List.length smoke_names)
    (List.length kernels);
  List.map
    (fun scheme ->
      let module S = (val scheme : Backend.Scheme) in
      let cycles = ref 0 and fast = ref 0.0 and slow = ref 0.0 in
      List.iter
        (fun (w : W.t) ->
          let trace = W.trace w ~quantize:None in
          let width = Gpr_analysis.Width.analyze w.kernel ~launch:w.launch in
          let res = S.analyze ~kernel:w.kernel ~width ~precision:None in
          let occ =
            (Backend.occupancy cfg res
               ~warps_per_block:(W.warps_per_block w)
               ~shared_bytes_per_block:(W.shared_bytes_per_block w))
              .Gpr_arch.Occupancy.blocks_per_sm
          in
          let mode = Backend.sim_mode scheme res in
          let alloc = res.Backend.alloc in
          let f, fs =
            time (fun () ->
                Sim.run ~waves cfg ~trace ~alloc ~blocks_per_sm:occ ~mode)
          in
          let _, rs =
            time (fun () ->
                Sim_ref.run ~waves cfg ~trace ~alloc ~blocks_per_sm:occ ~mode)
          in
          cycles := !cycles + f.Sim.cycles;
          fast := !fast +. fs;
          slow := !slow +. rs)
        kernels;
      (S.id, !cycles, !fast, !slow))
    Gpr_backend.Registry.all

let json_float = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

(* Committed per-scheme cycles/sec restricted to the smoke kernels:
   recomputed from the per-kernel rows, not the scheme totals, so the
   comparison is like-for-like. *)
let committed_smoke_rate json scheme =
  match Json.member "schemes" json with
  | Some (Json.Arr schemes) ->
    List.find_map
      (fun sj ->
        match Json.member "scheme" sj with
        | Some (Json.Str id) when id = scheme -> (
          match Json.member "kernels" sj with
          | Some (Json.Arr rows) ->
            let cycles = ref 0 and secs = ref 0.0 and found = ref 0 in
            List.iter
              (fun row ->
                match Json.member "kernel" row with
                | Some (Json.Str k) when List.mem k smoke_names -> (
                  match
                    ( Json.member "cycles" row,
                      json_float (Json.member "seconds" row) )
                  with
                  | Some (Json.Int c), Some s ->
                    incr found;
                    cycles := !cycles + c;
                    secs := !secs +. s
                  | _ -> ())
                | _ -> ())
              rows;
            if !found = List.length smoke_names && !secs > 0.0 then
              Some (float_of_int !cycles /. !secs)
            else None
          | _ -> None)
        | _ -> None)
      schemes
  | _ -> None

let test_sim_throughput_regression () =
  if fast_tests then ()
  else begin
    let json =
      match Json.parse_file "../BENCH_sim.json" with
      | Ok j -> Some j
      | Error _ | (exception Sys_error _) -> None
    in
    let waves =
      match Option.bind json (Json.member "waves") with
      | Some (Json.Int w) -> w
      | _ -> 6
    in
    let measured = measure_smoke ~waves in
    (* Gate 1: the flat engine earns its keep on any machine. *)
    List.iter
      (fun (id, _, fast, slow) ->
        let speedup = if fast > 0.0 then slow /. fast else 0.0 in
        if speedup < 2.5 then
          Alcotest.failf
            "%s: flat engine only %.2fx faster than Sim_ref on the smoke \
             subset (need >= 2.5x with the incremental issuable set)"
            id speedup)
      measured;
    (* Gate 2: absolute throughput vs the committed baseline, only
       meaningful on the machine that produced it. *)
    match json with
    | None -> () (* no committed baseline: gate 1 already ran *)
    | Some json ->
      let same_host =
        match Json.member "host" json with
        | Some (Json.Str h) -> h = Unix.gethostname ()
        | _ -> false
      in
      if same_host then
        List.iter
          (fun (id, cycles, fast, _) ->
            match committed_smoke_rate json id with
            | None -> ()
            | Some committed ->
              let rate =
                if fast > 0.0 then float_of_int cycles /. fast else 0.0
              in
              if rate < 0.7 *. committed then
                Alcotest.failf
                  "%s: %.2f Mcyc/s is a >30%% regression vs the committed \
                   %.2f Mcyc/s"
                  id (rate /. 1e6) (committed /. 1e6))
          measured
  end

(* ---------------------------------------------------------------- *)
(* End-to-end on a real kernel: occupancy helps a latency-bound kernel. *)

let test_occupancy_improves_latency_bound_kernel () =
  let b = Builder.create ~name:"lat" in
  let open Builder in
  let x = global_buffer b F32 "x" in
  let y = global_buffer b F32 "y" in
  let i = global_thread_id_x b in
  (* A pointer-chase-flavoured dependent chain of loads. *)
  let v0 = ld b x ~$i in
  let v1 = ld b x ~$(iand b ~$(ftoi b ~$(fmul b ~$v0 (cf 1000.0))) (ci 1023)) in
  let v2 = ld b x ~$(iand b ~$(ftoi b ~$(fmul b ~$v1 (cf 1000.0))) (ci 1023)) in
  st b y ~$i ~$v2;
  let kernel = finish b in
  let data =
    [ ("x", E.F_data (Gpr_workloads.Inputs.qfloats ~seed:5 ~n:1024));
      ("y", E.F_data (Array.make 1024 0.0)) ]
  in
  let bindings = E.bindings_for kernel ~data () in
  let trace =
    Option.get
      (E.run kernel ~launch:(launch_1d ~block:64 ~grid:16) ~params:[||]
         ~bindings { E.default_config with collect_trace = true })
  in
  let alloc = A.baseline kernel in
  let ipc blocks =
    (Sim.run ~waves:4 cfg ~trace ~alloc ~blocks_per_sm:blocks
       ~mode:Sim.Baseline).Sim.sm_ipc
  in
  Alcotest.(check bool) "4 blocks beat 1" true (ipc 4 > 1.5 *. ipc 1)

let () =
  Alcotest.run "sim"
    [
      ( "pipeline",
        [
          Alcotest.test_case "dependent chain" `Quick test_dependent_chain_serialises;
          Alcotest.test_case "latency hiding" `Quick test_more_warps_hide_latency;
          Alcotest.test_case "writeback monotone" `Quick test_writeback_delay_monotone;
          Alcotest.test_case "proposed overhead" `Quick
            test_proposed_overhead_at_same_occupancy;
          Alcotest.test_case "sfu bound" `Quick test_sfu_throughput_bound;
        ] );
      ( "proposed-path",
        [
          Alcotest.test_case "conversions" `Quick test_conversions_counted;
          Alcotest.test_case "double fetches" `Quick test_double_fetch_counted;
        ] );
      ( "sync+waves",
        [
          Alcotest.test_case "barrier completes" `Quick test_barrier_completes;
          Alcotest.test_case "waves scale" `Quick test_waves_scale_work;
        ] );
      ( "stall-attribution",
        [
          Alcotest.test_case "scoreboard chain" `Quick
            test_stall_identity_scoreboard;
          Alcotest.test_case "barrier wait" `Quick test_stall_identity_barrier;
          Alcotest.test_case "spill port" `Quick test_stall_identity_spill_port;
          Alcotest.test_case "empty trace" `Quick
            test_stall_identity_empty_trace;
          Alcotest.test_case "all modes" `Quick test_stall_identity_all_modes;
        ] );
      ( "memory",
        [
          Alcotest.test_case "latency + caches" `Quick test_memory_latency_and_caches;
          Alcotest.test_case "texture tracked" `Quick test_texture_accesses_tracked;
          Alcotest.test_case "cache basics" `Quick test_cache_basics;
          Alcotest.test_case "cache lru" `Quick test_cache_lru_eviction;
          Alcotest.test_case "cache reset" `Quick test_cache_hit_rate_reset;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "registry pins (all backends)" `Quick
            test_registry_equivalence;
          QCheck_alcotest.to_alcotest prop_engines_agree;
        ] );
      ( "fast-forward",
        [
          Alcotest.test_case "empty trace" `Quick test_ffwd_empty_trace;
          Alcotest.test_case "single-warp barriers" `Quick
            test_ffwd_single_warp_barrier;
          Alcotest.test_case "deadlock-adjacent barrier" `Quick
            test_ffwd_deadlock_adjacent_barrier;
          Alcotest.test_case "same-cycle releases" `Quick
            test_ffwd_same_cycle_releases;
          Alcotest.test_case "spill-port saturation" `Quick
            test_ffwd_spill_port_saturation;
        ] );
      ( "perf",
        [
          Alcotest.test_case "throughput regression (tier 2)" `Slow
            test_sim_throughput_regression;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "occupancy helps" `Quick
            test_occupancy_improves_latency_bound_kernel ] );
    ]
