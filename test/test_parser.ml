(* Parser tests: print/parse round trips for hand-written kernels and
   for every Table 4 workload, plus diagnostics for malformed input. *)

open Gpr_isa
open Gpr_isa.Types

let roundtrip kernel =
  let text = Pp.kernel_to_string kernel in
  match Parser.parse text with
  | Error e -> Alcotest.fail (kernel.k_name ^ ": " ^ e ^ "\n" ^ text)
  | Ok k -> k

(* Structural equality that ignores register display names. *)
let strip_names kernel =
  let strip (r : vreg) = { r with name = "" } in
  let strip_op = function
    | Reg r -> Reg (strip r)
    | (Imm_i _ | Imm_f _) as o -> o
  in
  let strip_instr = function
    | Ibin (o, d, a, b) -> Ibin (o, strip d, strip_op a, strip_op b)
    | Iun (o, d, a) -> Iun (o, strip d, strip_op a)
    | Imad (d, a, b, c) -> Imad (strip d, strip_op a, strip_op b, strip_op c)
    | Fbin (o, d, a, b) -> Fbin (o, strip d, strip_op a, strip_op b)
    | Fun (o, d, a) -> Fun (o, strip d, strip_op a)
    | Ffma (d, a, b, c) -> Ffma (strip d, strip_op a, strip_op b, strip_op c)
    | Setp (o, ty, p, a, b) -> Setp (o, ty, strip p, strip_op a, strip_op b)
    | Selp (d, a, b, p) -> Selp (strip d, strip_op a, strip_op b, strip p)
    | Mov (d, a) -> Mov (strip d, strip_op a)
    | Cvt (o, d, a) -> Cvt (o, strip d, strip_op a)
    | Ld (d, { abuf; aindex }) -> Ld (strip d, { abuf; aindex = strip_op aindex })
    | Ld_param (d, i) -> Ld_param (strip d, i)
    | St ({ abuf; aindex }, v) ->
      St ({ abuf; aindex = strip_op aindex }, strip_op v)
    | Bar -> Bar
    | Phi (d, ops) -> Phi (strip d, List.map (fun (l, o) -> (l, strip_op o)) ops)
    | Pi (d, s, f) -> Pi (strip d, strip s, f)
  in
  let strip_term = function
    | Br l -> Br l
    | Cbr (p, t, f) -> Cbr (strip p, t, f)
    | Ret -> Ret
  in
  {
    kernel with
    k_blocks =
      Array.map
        (fun b ->
           { b with
             instrs = Array.map strip_instr b.instrs;
             term = strip_term b.term })
        kernel.k_blocks;
  }

let check_roundtrip kernel =
  let back = roundtrip kernel in
  let a = strip_names kernel and b = strip_names back in
  Alcotest.(check string) (kernel.k_name ^ " name") a.k_name b.k_name;
  Alcotest.(check int) "blocks" (Array.length a.k_blocks) (Array.length b.k_blocks);
  Alcotest.(check int) "params" (Array.length a.k_params) (Array.length b.k_params);
  Alcotest.(check int) "buffers" (Array.length a.k_buffers) (Array.length b.k_buffers);
  Alcotest.(check bool) "params equal" true (a.k_params = b.k_params);
  Alcotest.(check bool) "buffers equal" true (a.k_buffers = b.k_buffers);
  Alcotest.(check bool) "specials equal" true
    (List.sort compare a.k_specials = List.sort compare b.k_specials);
  Array.iteri
    (fun i blk ->
       let blk' = b.k_blocks.(i) in
       Alcotest.(check bool)
         (Printf.sprintf "%s bb%d instrs" kernel.k_name i)
         true (blk.instrs = blk'.instrs);
       Alcotest.(check bool)
         (Printf.sprintf "%s bb%d term" kernel.k_name i)
         true (blk.term = blk'.term))
    a.k_blocks

let test_roundtrip_small () =
  let b = Builder.create ~name:"small" in
  let open Builder in
  let n = param_i32 b ~range:(0, 4096) "n" in
  let a = param_f32 b "a" in
  let x = global_buffer b F32 "x" in
  let y = global_buffer b F32 ~range:(0, 255) "y" in
  let i = global_thread_id_x b in
  if_then b (ilt b ~$i ~$n) (fun () ->
      let xi = ld b x ~$i in
      let yi = ld b y ~$i in
      st b y ~$i ~$(ffma b ~$a ~$xi ~$yi));
  check_roundtrip (finish b)

let cvt_chain b u =
  let open Builder in
  let si = iadd b ~ty:U32 ~$u (ci 1) in
  let f1 = utof b ~$si in
  let i1 = ftoi b ~$f1 in
  itof b ~$i1

let test_roundtrip_all_ops () =
  let b = Builder.create ~name:"allops" in
  let open Builder in
  let gi = global_buffer b S32 "gi" in
  let gf = global_buffer b F32 "gf" in
  let sh = shared_buffer b S32 "sh" in
  let tx = texture_buffer b F32 "tx" in
  let i = global_thread_id_x b in
  let v = ld b gi ~$i in
  let ops =
    [ iadd b ~$v (ci 1); isub b ~$v (ci 2); imul b ~$v ~$v;
      idiv b ~$v (ci 3); irem b ~$v (ci 5); imin b ~$v (ci 7);
      imax b ~$v (ci (-7)); iand b ~$v (ci 0xff); ior b ~$v (ci 1);
      ixor b ~$v (ci 3); ishl b ~$v (ci 2); ishr b ~$v (ci 1);
      ineg b ~$v; inot b ~$v; iabs b ~$v;
      imad b ~$v ~$v (ci 3) ]
  in
  let s = List.fold_left (fun acc r -> iadd b ~$acc ~$r) (mov b S32 (ci 0)) ops in
  st b sh ~$(iand b ~$i (ci 31)) ~$s;
  bar b;
  let f = ld b tx ~$i in
  let fops =
    [ fadd b ~$f (cf 1.5); fsub b ~$f (cf 0.25); fmul b ~$f ~$f;
      fdiv b ~$f (cf 2.0); fmin b ~$f (cf 0.5); fmax b ~$f (cf (-0.5));
      fneg b ~$f; fabs b ~$f; ffloor b ~$f; fsqrt b ~$f; frsqrt b ~$f;
      frcp b ~$f; fsin b ~$f; fcos b ~$f; fex2 b ~$f; flg2 b ~$f;
      ffma b ~$f ~$f (cf 1.0) ]
  in
  let fs = List.fold_left (fun acc r -> fadd b ~$acc ~$r) (mov b F32 (cf 0.0)) fops in
  let p = flt b ~$fs (cf 100.0) in
  let sel = selp b F32 ~$fs (cf 0.0) p in
  let u = ftou b ~$sel in
  let s2 = cvt_chain b u in
  st b gf ~$i ~$s2;
  check_roundtrip (finish b)

let test_roundtrip_workloads () =
  List.iter
    (fun (w : Gpr_workloads.Workload.t) -> check_roundtrip w.kernel)
    Gpr_workloads.Registry.all

let test_parsed_kernel_executes () =
  (* Round-tripped kernel must produce the same outputs. *)
  let w = Option.get (Gpr_workloads.Registry.by_name "Hotspot") in
  let parsed = roundtrip w.kernel in
  let w' = { w with kernel = parsed } in
  let a = Gpr_workloads.Workload.reference w in
  let b = Gpr_workloads.Workload.reference w' in
  Alcotest.(check bool) "same outputs" true (a = b)

let expect_error text needle =
  match Parser.parse text with
  | Ok _ -> Alcotest.fail ("expected parse error mentioning " ^ needle)
  | Error e ->
    let contains =
      let n = String.length needle and m = String.length e in
      let rec go i = i + n <= m && (String.sub e i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) ("error mentions " ^ needle ^ ": " ^ e) true contains

let test_errors () =
  expect_error ".entry f ()\nbb0:\n  add.s32 %t_0, %u_9, 1\n  ret\n"
    "used before definition";
  expect_error ".entry f ()\nbb0:\n  frobnicate.s32 %t_0, 1, 2\n  ret\n"
    "unknown integer op";
  expect_error ".entry f ()\nbb0:\n  mov.s32 %t_0, 1\n"
    "no terminator";
  expect_error ".entry f ()\nbb0:\n  bra bb7\n" "branches to missing";
  expect_error ".entry f ()\nbb0:\n  ld.global.s32 %t_0, nosuch[0]\n  ret\n"
    "unknown buffer";
  expect_error "bb0:\n  mov.s32 %t_0, 1\n  ret\n" "";
  expect_error ".entry f ()\n  mov.s32 %t_0, 1\n  ret\n" "outside a block"

(* QCheck round-trip: seed-parameterised kernels that always contain a
   barrier, predicated branches and shared-memory traffic — the
   constructs the lint corpus leans on — must survive
   [Pp.kernel_to_string] → [Parser.parse] structurally unchanged. *)
let forced_kernel seed =
  let b = Builder.create ~name:(Printf.sprintf "forced_%d" seed) in
  let open Builder in
  let sh = shared_buffer b S32 "sh" in
  let out = global_buffer b S32 "out" in
  let n = param_i32 b ~range:(0, 64) "n" in
  let tid = tid_x b in
  st b sh ~$tid ~$(iadd b ~$tid (ci (seed land 0xff)));
  bar b;
  if_ b
    (ilt b ~$tid ~$n)
    (fun () -> st b out ~$tid ~$(ld b sh ~$tid))
    (fun () -> if seed land 1 = 0 then st b out ~$tid (ci 0));
  if seed land 2 = 0 then bar b;
  if_then b
    (ige b ~$tid (ci ((seed lsr 2) land 31)))
    (fun () -> st b sh ~$tid (ci (seed land 7)));
  if seed land 4 = 0 then
    for_ b ~lo:(ci 0) ~hi:(ci ((seed lsr 5) land 7)) (fun i ->
        st b out ~$i ~$i);
  finish b

let prop_forced_roundtrip =
  QCheck.Test.make ~name:"bar/cbr/shared kernels round-trip" ~count:100
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let k = forced_kernel seed in
      let back = roundtrip k in
      let a = strip_names k and b = strip_names back in
      a = b
      || QCheck.Test.fail_reportf "seed %d: round-trip changed kernel:\n%s"
           seed (Pp.kernel_to_string k))

let test_float_immediates_roundtrip () =
  let b = Builder.create ~name:"fimm" in
  let open Builder in
  let out = global_buffer b F32 "out" in
  let vals = [ 0.0; -0.0; 1.5; -3.25; 0.1; 1e-20; 1e20; 43758.5453 ] in
  let acc =
    List.fold_left (fun acc v -> fadd b ~$acc (cf v)) (mov b F32 (cf 0.0)) vals
  in
  st b out (ci 0) ~$acc;
  check_roundtrip (finish b)

let () =
  Alcotest.run "parser"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "small kernel" `Quick test_roundtrip_small;
          Alcotest.test_case "all opcodes" `Quick test_roundtrip_all_ops;
          Alcotest.test_case "float immediates" `Quick
            test_float_immediates_roundtrip;
          Alcotest.test_case "all workloads" `Quick test_roundtrip_workloads;
          Alcotest.test_case "parsed kernel executes" `Quick
            test_parsed_kernel_executes;
          QCheck_alcotest.to_alcotest prop_forced_roundtrip;
        ] );
      ("errors", [ Alcotest.test_case "diagnostics" `Quick test_errors ]);
    ]
