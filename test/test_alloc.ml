(* Slice-granular allocator tests: baseline equivalence with max-live,
   packing correctness (no two simultaneously-live variables sharing a
   slice), pressure monotonicity in widths, and split accounting. *)

open Gpr_isa
open Gpr_isa.Types
module A = Gpr_alloc.Alloc
module L = Gpr_analysis.Liveness

(* A kernel with a tunable number of simultaneously-live values. *)
let fan_kernel n_live =
  let b = Builder.create ~name:(Printf.sprintf "fan%d" n_live) in
  let open Builder in
  let out = global_buffer b S32 "out" in
  let i = global_thread_id_x b in
  let vals =
    List.init n_live (fun k -> iadd b ~$i (ci (k * 17)))
  in
  (* Consume them all at the end so they stay live together. *)
  let sum =
    List.fold_left (fun acc v -> iadd b ~$acc ~$v) (mov b S32 (ci 0)) vals
  in
  st b out ~$i ~$sum;
  finish b

let mixed_kernel () =
  let b = Builder.create ~name:"mixed" in
  let open Builder in
  let out = global_buffer b F32 "out" in
  let i = global_thread_id_x b in
  let small1 = iand b ~$i (ci 0xf) in          (* 4 bits *)
  let small2 = iand b ~$i (ci 0x3f) in         (* 6 bits *)
  let f1 = itof b ~$i in
  let f2 = fmul b ~$f1 (cf 2.0) in
  let s = iadd b ~$small1 ~$small2 in
  let r = ffma b ~$f2 ~$f1 ~$(itof b ~$s) in
  st b out ~$i ~$r;
  finish b

let test_baseline_matches_max_live () =
  (* Architectural-name allocation is a linear scan over interval
     hulls, so the baseline pressure matches max-live up to small
     hull/typing slack — mirroring how the paper's own PTX-level
     allocation slightly overestimates ptxas (Sec. 5.1). *)
  List.iter
    (fun n ->
       let k = fan_kernel n in
       let live = L.compute k in
       let alloc = A.baseline k in
       let ml = L.max_live live in
       Alcotest.(check bool)
         (Printf.sprintf "pressure in [max_live, max_live+2] (n=%d)" n)
         true
         (alloc.A.pressure >= ml && alloc.A.pressure <= ml + 2))
    [ 1; 4; 9; 16; 33 ]

let test_narrow_widths_reduce_pressure () =
  let k = fan_kernel 16 in
  let base = A.baseline k in
  (* All values fit 8 bits -> 2 slices each -> 4 per register. *)
  let packed = A.run k ~width_of:(fun _ -> 8) in
  Alcotest.(check bool) "packed smaller" true
    (packed.A.pressure < base.A.pressure);
  Alcotest.(check bool) "at least 3x" true
    (packed.A.pressure * 3 <= base.A.pressure)

let test_pressure_monotone_in_width () =
  let k = fan_kernel 12 in
  let p w = (A.run k ~width_of:(fun _ -> w)).A.pressure in
  let ps = List.map p [ 4; 8; 12; 16; 20; 24; 28; 32 ] in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (nondecreasing ps)

(* Core invariant: at every program point, the slices of simultaneously
   live variables are disjoint. *)
let check_no_overlap k widths =
  let alloc = A.run k ~width_of:widths in
  let live = L.compute k in
  (* For each block boundary, collect live sets and check placements. *)
  let cfg = Cfg.of_kernel k in
  for bl = 0 to Cfg.num_blocks cfg - 1 do
    let check set =
      let used = Hashtbl.create 16 in
      L.Iset.iter
        (fun v ->
           match A.lookup alloc v with
           | None -> Alcotest.fail (Printf.sprintf "no placement for %%%d" v)
           | Some p ->
             let add reg mask =
               if reg >= 0 then
                 for s = 0 to 7 do
                   if mask land (1 lsl s) <> 0 then begin
                     let key = (reg, s) in
                     if Hashtbl.mem used key then
                       Alcotest.fail
                         (Printf.sprintf "slice clash at r%d.%d" reg s);
                     Hashtbl.replace used key ()
                   end
                 done
             in
             add p.A.reg0 p.A.mask0;
             add p.A.reg1 p.A.mask1)
        set
    in
    check (L.live_in live bl);
    check (L.live_out live bl)
  done;
  alloc

let test_no_slice_overlap_mixed () =
  let k = mixed_kernel () in
  let range = Gpr_analysis.Range.analyze k ~launch:(launch_1d ~block:64 ~grid:2) in
  let widths (r : vreg) =
    match r.ty with
    | F32 -> 20
    | S32 | U32 -> Gpr_analysis.Range.var_bitwidth range r.id
    | Pred -> 32
  in
  ignore (check_no_overlap k widths)

let test_no_slice_overlap_fan () =
  List.iter
    (fun (n, w) -> ignore (check_no_overlap (fan_kernel n) (fun _ -> w)))
    [ (7, 8); (13, 12); (21, 4); (10, 32); (18, 20) ]

let prop_no_overlap_random_widths =
  QCheck.Test.make ~name:"no slice overlap with random widths" ~count:60
    QCheck.(pair (int_range 2 20) (int_range 1 1000000))
    (fun (n, seed) ->
       let k = fan_kernel n in
       let rng = Gpr_util.Rng.create seed in
       let cache = Hashtbl.create 16 in
       let widths (r : vreg) =
         match Hashtbl.find_opt cache r.id with
         | Some w -> w
         | None ->
           let w = 1 + Gpr_util.Rng.int rng 32 in
           Hashtbl.replace cache r.id w;
           w
       in
       ignore (check_no_overlap k widths);
       true)

let prop_no_overlap_generated_kernels =
  (* Same core invariant, over the fuzzer's kernel generator instead of
     the structured fan/mixed shapes: random CFGs, types and liveness. *)
  QCheck.Test.make ~name:"no slice overlap on generated kernels" ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
       let k = (Gpr_check.Gen.generate seed).Gpr_check.Gen.kernel in
       let rng = Gpr_util.Rng.create (seed lxor 0x5f5f) in
       let cache = Hashtbl.create 16 in
       let widths (r : vreg) =
         match Hashtbl.find_opt cache r.id with
         | Some w -> w
         | None ->
           let w = 1 + Gpr_util.Rng.int rng 32 in
           Hashtbl.replace cache r.id w;
           w
       in
       ignore (check_no_overlap k widths);
       true)

let prop_no_split_pressure_dominates =
  (* Splits only ever help: the allocator with splits disabled must
     never report lower pressure than with them enabled. *)
  QCheck.Test.make ~name:"forbidding splits never lowers pressure" ~count:40
    QCheck.(pair (int_range 1 10_000) (int_range 1 32))
    (fun (seed, w) ->
       let k = (Gpr_check.Gen.generate seed).Gpr_check.Gen.kernel in
       let split = A.run ~allow_split:true k ~width_of:(fun _ -> w) in
       let nosplit = A.run ~allow_split:false k ~width_of:(fun _ -> w) in
       nosplit.A.pressure >= split.A.pressure)

let test_split_placements_counted () =
  (* Force fragmentation: many 5-slice (17..20-bit) values leave 3-slice
     holes that only splits can use. *)
  let k = fan_kernel 16 in
  let alloc = A.run k ~width_of:(fun _ -> 20) in
  (* Several variables may alias one architectural name, so count
     *distinct* split placements. *)
  let distinct = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (p : A.placement) ->
       Hashtbl.replace distinct (p.A.reg0, p.A.mask0, p.A.reg1, p.A.mask1) p)
    alloc.A.placements;
  let split_in_table =
    Hashtbl.fold
      (fun _ p acc -> if A.is_split p then acc + 1 else acc)
      distinct 0
  in
  Alcotest.(check int) "split counter consistent" alloc.A.split_count
    split_in_table;
  (* Each placement's slice count must match its mask population. *)
  Hashtbl.iter
    (fun _ (p : A.placement) ->
       Alcotest.(check int) "slices = popcount"
         (Gpr_util.Bits.popcount p.A.mask0 + Gpr_util.Bits.popcount p.A.mask1)
         p.A.slices;
       Alcotest.(check bool) "enough bits" true (p.A.slices * 4 >= p.A.bits))
    alloc.A.placements

let test_workload_allocs_fit_arch_table () =
  List.iter
    (fun (w : Gpr_workloads.Workload.t) ->
       let alloc = A.baseline w.kernel in
       Alcotest.(check bool)
         (w.name ^ " fits 256-entry table")
         true (A.fits_arch_table alloc))
    Gpr_workloads.Registry.all

let () =
  let q = QCheck_alcotest.to_alcotest ~verbose:false in
  Alcotest.run "alloc"
    [
      ( "pressure",
        [
          Alcotest.test_case "baseline = max live" `Quick
            test_baseline_matches_max_live;
          Alcotest.test_case "narrow reduces" `Quick
            test_narrow_widths_reduce_pressure;
          Alcotest.test_case "monotone in width" `Quick
            test_pressure_monotone_in_width;
        ] );
      ( "packing",
        [
          Alcotest.test_case "no overlap (mixed)" `Quick test_no_slice_overlap_mixed;
          Alcotest.test_case "no overlap (fan)" `Quick test_no_slice_overlap_fan;
          Alcotest.test_case "splits counted" `Quick test_split_placements_counted;
          Alcotest.test_case "workloads fit table" `Quick
            test_workload_allocs_fit_arch_table;
        ] );
      ( "packing-props",
        [
          q prop_no_overlap_random_widths;
          q prop_no_overlap_generated_kernels;
          q prop_no_split_pressure_dominates;
        ] );
    ]
