(* Precision-tuner tests on synthetic evaluation oracles where the
   achievable format of every site is known in advance, plus an
   end-to-end run on a real kernel with dead and live float values. *)

open Gpr_isa.Types
module P = Gpr_precision.Precision
module Q = Gpr_quality.Quality
module F = Gpr_fp.Format_
module Inputs = Gpr_workloads.Inputs

let mk_sites n =
  List.init n (fun i -> (i, { id = 100 + i; ty = F32; name = "f" }))

(* 4/3 has an infinite binary mantissa, so every Table 3 format rounds
   it to a different value — the hook's output identifies the format. *)
let probe = 4.0 /. 3.0

let () =
  (* Sanity: the probe distinguishes all seven formats. *)
  let outs = List.map (fun f -> F.quantize f probe) F.all in
  assert (List.length (List.sort_uniq compare outs) = 7)

let detect_bits quantize pc =
  let out = quantize pc probe in
  let rec go l =
    if l > 6 then 32
    else if F.quantize (F.of_level l) probe = out then
      (F.of_level l).F.total_bits
    else go (l + 1)
  in
  go 0

(* Oracle: quality holds iff every site is at least [floor] bits wide. *)
let oracle ~floors sites ~quantize =
  let ok =
    List.for_all
      (fun (pc, _) -> detect_bits quantize pc >= List.assoc pc floors)
      sites
  in
  if ok then Q.S_deviation_pct 0.0 else Q.S_deviation_pct 100.0

let test_single_site_floor () =
  List.iter
    (fun floor_bits ->
       let sites = mk_sites 1 in
       let floors = [ (0, floor_bits) ] in
       let asg =
         P.tune ~sites ~evaluate:(oracle ~floors sites) ~threshold:Q.Perfect ()
       in
       let f = Hashtbl.find asg.P.formats 0 in
       Alcotest.(check int)
         (Printf.sprintf "reaches floor %d" floor_bits)
         floor_bits f.F.total_bits)
    [ 32; 28; 24; 20; 16; 12; 8 ]

let test_mixed_floors () =
  let sites = mk_sites 4 in
  let floors = [ (0, 8); (1, 20); (2, 32); (3, 12) ] in
  let asg =
    P.tune ~sites ~evaluate:(oracle ~floors sites) ~threshold:Q.Perfect ()
  in
  List.iter
    (fun (pc, want) ->
       Alcotest.(check int)
         (Printf.sprintf "site %d" pc)
         want (Hashtbl.find asg.P.formats pc).F.total_bits)
    floors

let test_budget_safety () =
  let sites = mk_sites 8 in
  let floors = List.init 8 (fun i -> (i, if i mod 2 = 0 then 8 else 24)) in
  let eval = oracle ~floors sites in
  let asg = P.tune ~budget:3 ~sites ~evaluate:eval ~threshold:Q.Perfect () in
  Alcotest.(check bool) "within budget" true (asg.P.evaluations <= 3);
  Alcotest.(check bool) "still valid" true
    (Q.meets (eval ~quantize:(P.quantizer asg)) Q.Perfect)

let test_min_group_coarsens () =
  let sites = mk_sites 8 in
  let floors = List.init 8 (fun i -> (i, if i = 0 then 32 else 8)) in
  (* With min_group = 8 the whole group is pinned by site 0. *)
  let asg =
    P.tune ~min_group:8 ~sites ~evaluate:(oracle ~floors sites)
      ~threshold:Q.Perfect ()
  in
  List.iter
    (fun (pc, _) ->
       Alcotest.(check int) "pinned at 32" 32
         (Hashtbl.find asg.P.formats pc).F.total_bits)
    floors;
  (* Fine-grained bisection frees the other sites. *)
  let asg =
    P.tune ~min_group:1 ~sites ~evaluate:(oracle ~floors sites)
      ~threshold:Q.Perfect ()
  in
  Alcotest.(check int) "site 0 pinned" 32
    (Hashtbl.find asg.P.formats 0).F.total_bits;
  Alcotest.(check int) "site 3 free" 8
    (Hashtbl.find asg.P.formats 3).F.total_bits

let test_no_reduction_and_quantizer () =
  let sites = mk_sites 3 in
  let asg = P.no_reduction ~sites in
  Alcotest.(check (float 0.0)) "identity hook" 1.2345678
    (P.quantizer asg 0 1.2345678);
  Alcotest.(check (float 1e-9)) "mean 32" 32.0 (P.mean_bits asg)

let test_var_bits_max_over_sites () =
  let r = { id = 7; ty = F32; name = "x" } in
  let sites = [ (0, r); (1, r) ] in
  let formats = Hashtbl.create 4 in
  Hashtbl.replace formats 0 (F.of_level 6);  (* 8 bits *)
  Hashtbl.replace formats 1 (F.of_level 3);  (* 20 bits *)
  let asg = { P.formats; sites; evaluations = 0 } in
  let vb = P.var_bits asg in
  Alcotest.(check int) "max width" 20 (Hashtbl.find vb 7);
  Alcotest.(check (float 1e-9)) "mean bits" 14.0 (P.mean_bits asg)

let test_tuner_on_real_kernel () =
  (* A kernel with a value killed by multiplication with zero: its
     precision is irrelevant, while the surviving value's precision is
     bounded by the perfect threshold. *)
  let open Gpr_isa in
  let b = Builder.create ~name:"sens" in
  let open Builder in
  let out = global_buffer b F32 "out" in
  let i = global_thread_id_x b in
  let x = ld b out ~$i in
  let dead = fmul b ~$x (cf 1.2345678) in
  let killed = fmul b ~$dead (cf 0.0) in
  let alive = fmul b ~$x (cf 0.9993) in
  st b out ~$i ~$(fadd b ~$killed ~$alive);
  let kernel = finish b in
  let module E = Gpr_exec.Exec in
  let launch = launch_1d ~block:32 ~grid:1 in
  let run quantize =
    let data = Inputs.qfloats ~seed:9 ~n:32 in
    let bindings = E.bindings_for kernel ~data:[ ("out", E.F_data data) ] () in
    ignore
      (E.run kernel ~launch ~params:[||] ~bindings
         { E.default_config with quantize });
    data
  in
  let reference = run None in
  let sites = E.float_def_sites kernel in
  (* ld, dead, killed, alive, fadd *)
  Alcotest.(check int) "five float sites" 5 (List.length sites);
  let evaluate ~quantize =
    Q.S_deviation_pct (Q.deviation_pct (run (Some quantize)) ~reference)
  in
  let asg = P.tune ~sites ~evaluate ~threshold:Q.Perfect () in
  (* Quality must hold at the final assignment... *)
  Alcotest.(check bool) "final valid" true
    (Q.meets (evaluate ~quantize:(P.quantizer asg)) Q.Perfect);
  (* ...and the dead chain compresses further than the live one. *)
  (match sites with
   | _ld :: (pc_dead, _) :: _ ->
     Alcotest.(check bool) "dead value fully reduced" true
       ((Hashtbl.find asg.P.formats pc_dead).F.total_bits <= 12)
   | _ -> Alcotest.fail "no sites");
  Alcotest.(check bool) "mean below 32" true (P.mean_bits asg < 32.0)

let () =
  Alcotest.run "precision"
    [
      ( "oracle",
        [
          Alcotest.test_case "single-site floors" `Quick test_single_site_floor;
          Alcotest.test_case "mixed floors" `Quick test_mixed_floors;
          Alcotest.test_case "budget safety" `Quick test_budget_safety;
          Alcotest.test_case "min_group coarsens" `Quick test_min_group_coarsens;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "no_reduction + quantizer" `Quick
            test_no_reduction_and_quantizer;
          Alcotest.test_case "var_bits max" `Quick test_var_bits_max_over_sites;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "dead vs live values" `Quick
            test_tuner_on_real_kernel ] );
    ]
